package campaign

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/probe"
	"repro/internal/trace"
)

// binarySink encodes every delivered record with the dataset's binary
// writer, so two runs compare at the strictest level there is: the bytes
// that would land on disk.
func binarySink(t *testing.T, buf *bytes.Buffer) (Consumer, func()) {
	t.Helper()
	w := trace.NewBinaryWriter(buf)
	c := Funcs{
		Traceroute: func(tr *trace.Traceroute) {
			if err := w.WriteTraceroute(tr); err != nil {
				t.Fatal(err)
			}
		},
		Ping: func(p *trace.Ping) {
			if err := w.WritePing(p); err != nil {
				t.Fatal(err)
			}
		},
	}
	return c, func() {
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}
}

// runTwice executes the same campaign sequentially and with the given
// worker count, each against a fresh identically-seeded prober, and
// returns both encoded streams.
func runTwice(t *testing.T, seed int64, run func(p *probe.Prober, workers int, c Consumer) error, workers int) ([]byte, []byte) {
	t.Helper()
	var seq, par bytes.Buffer
	c, flush := binarySink(t, &seq)
	p, _ := newProber(t, seed, 3, 60)
	if err := run(p, 1, c); err != nil {
		t.Fatal(err)
	}
	flush()
	c, flush = binarySink(t, &par)
	p2, _ := newProber(t, seed, 3, 60)
	if err := run(p2, workers, c); err != nil {
		t.Fatal(err)
	}
	flush()
	return seq.Bytes(), par.Bytes()
}

func TestLongTermBitIdentical(t *testing.T) {
	for _, workers := range []int{0, 4, 8} {
		// Clusters are plain values and SelectMesh is deterministic, so one
		// mesh serves both identically-seeded worlds.
		_, platform := newProber(t, 31, 3, 60)
		servers := SelectMesh(platform, 5, 31)
		run := func(p *probe.Prober, w int, c Consumer) error {
			return LongTerm(p, LongTermConfig{
				Servers:       servers,
				Duration:      18 * time.Hour,
				Interval:      3 * time.Hour,
				ParisSwitchAt: 9 * time.Hour,
				Workers:       w,
			}, c)
		}
		seq, par := runTwice(t, 31, run, workers)
		if !bytes.Equal(seq, par) {
			t.Fatalf("workers=%d: parallel stream differs from sequential (%d vs %d bytes)", workers, len(par), len(seq))
		}
	}
}

func TestPingMeshBitIdentical(t *testing.T) {
	_, platform := newProber(t, 32, 3, 60)
	servers := SelectMesh(platform, 5, 32)
	pairs := FullMeshPairs(servers)
	run := func(p *probe.Prober, w int, c Consumer) error {
		return PingMesh(p, PingMeshConfig{
			Pairs:    pairs,
			Duration: 2 * time.Hour,
			Interval: 15 * time.Minute,
			Workers:  w,
		}, c)
	}
	seq, par := runTwice(t, 32, run, 8)
	if len(seq) == 0 {
		t.Fatal("empty stream")
	}
	if !bytes.Equal(seq, par) {
		t.Fatalf("parallel stream differs from sequential (%d vs %d bytes)", len(par), len(seq))
	}
}

func TestTracerouteCampaignBitIdentical(t *testing.T) {
	_, platform := newProber(t, 33, 3, 60)
	servers := SelectMesh(platform, 4, 33)
	pairs := UnorderedPairs(servers)
	run := func(p *probe.Prober, w int, c Consumer) error {
		return TracerouteCampaign(p, TracerouteCampaignConfig{
			Pairs:          pairs,
			Duration:       2 * time.Hour,
			Interval:       30 * time.Minute,
			BothDirections: true,
			Paris:          true,
			V6:             true,
			Workers:        w,
		}, c)
	}
	seq, par := runTwice(t, 33, run, 6)
	if len(seq) == 0 {
		t.Fatal("empty stream")
	}
	if !bytes.Equal(seq, par) {
		t.Fatalf("parallel stream differs from sequential (%d vs %d bytes)", len(par), len(seq))
	}
}

func TestNormalizeWorkers(t *testing.T) {
	if got := NormalizeWorkers(1); got != 1 {
		t.Errorf("NormalizeWorkers(1) = %d", got)
	}
	if got := NormalizeWorkers(0); got < 1 || got > maxWorkers {
		t.Errorf("NormalizeWorkers(0) = %d, want within [1,%d]", got, maxWorkers)
	}
	if got := NormalizeWorkers(-3); got != NormalizeWorkers(0) {
		t.Errorf("negative and zero must normalize alike: %d vs %d", got, NormalizeWorkers(0))
	}
	if got := NormalizeWorkers(maxWorkers + 100); got != maxWorkers {
		t.Errorf("NormalizeWorkers(big) = %d, want clamp to %d", got, maxWorkers)
	}
	if got := NormalizeWorkers(maxWorkers); got != maxWorkers {
		t.Errorf("NormalizeWorkers(maxWorkers) = %d, want %d unchanged", got, maxWorkers)
	}
}
