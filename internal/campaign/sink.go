package campaign

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/trace"
)

// RecordWriter is the write side of a dataset sink: trace.BinaryWriter,
// trace.JSONLWriter, and store.Writer all satisfy it.
//
// Writers must not retain the record (or its Hops slice) past the Write
// call: WriteSink declares itself a streaming consumer, so the engine
// recycles records into the trace pool as soon as the write returns.
type RecordWriter interface {
	WriteTraceroute(*trace.Traceroute) error
	WritePing(*trace.Ping) error
}

// MetricSinkWriteErrors counts dataset-sink write failures, including
// records skipped after the first failure.
const MetricSinkWriteErrors = "s2s_sink_write_errors_total"

// WriteSink adapts a RecordWriter into a Consumer. The campaign interfaces
// deliberately have no error path — measurement delivery never fails — so
// the sink remembers the first write error, skips subsequent writes, and
// lets the caller check Err after the campaign (or poll it from a round
// loop's abort hook to stop early). Records are still counted past an
// error, keeping the count equal to what the campaign produced.
type WriteSink struct {
	w     RecordWriter
	err   error
	count int64
	mErrs *obs.Counter
	rec   *flight.Recorder
}

// NewWriteSink wraps a record writer.
func NewWriteSink(w RecordWriter) *WriteSink { return &WriteSink{w: w} }

// Instrument registers the sink's write-error counter. A nil registry is
// a no-op.
func (s *WriteSink) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.mErrs = reg.Counter(MetricSinkWriteErrors, "dataset sink write failures (incl. records skipped after the first)")
}

// Trace attaches a flight recorder: the first write failure becomes a
// sink_error event stamped with the failing record's timestamp.
func (s *WriteSink) Trace(rec *flight.Recorder) { s.rec = rec }

func (s *WriteSink) fail(err error, at time.Duration) {
	s.err = err
	s.rec.Event(flight.PhSinkError, at, flight.Attrs{S: err.Error()})
	s.rec = nil // only the first failure is an event; the rest are counted
}

// OnTraceroute writes the record unless a previous write failed.
func (s *WriteSink) OnTraceroute(tr *trace.Traceroute) {
	s.count++
	if s.err == nil {
		if err := s.w.WriteTraceroute(tr); err != nil {
			s.mErrs.Inc()
			s.fail(err, tr.At)
		}
		return
	}
	s.mErrs.Inc()
}

// OnPing writes the record unless a previous write failed.
func (s *WriteSink) OnPing(p *trace.Ping) {
	s.count++
	if s.err == nil {
		if err := s.w.WritePing(p); err != nil {
			s.mErrs.Inc()
			s.fail(err, p.At)
		}
		return
	}
	s.mErrs.Inc()
}

// StreamsRecords marks the sink as a streaming consumer: every record is
// encoded (or counted) within the On* call and never retained, so the
// engine may recycle it immediately after delivery.
func (s *WriteSink) StreamsRecords() bool { return true }

// Err returns the first write error, if any.
func (s *WriteSink) Err() error { return s.err }

// Count returns how many records the campaign delivered (written or not).
func (s *WriteSink) Count() int64 { return s.count }

// SetCount primes the delivered-record counter — used when resuming a
// campaign whose earlier records are already committed.
func (s *WriteSink) SetCount(n int64) { s.count = n }

// Checkpoint makes the underlying writer durable and returns its resume
// position, failing if the writer cannot checkpoint or a write already
// failed.
func (s *WriteSink) Checkpoint() (int64, error) {
	if s.err != nil {
		return 0, s.err
	}
	cw, ok := s.w.(CheckpointableWriter)
	if !ok {
		return 0, fmt.Errorf("campaign: sink writer %T cannot checkpoint", s.w)
	}
	return cw.Checkpoint()
}
