package campaign

import "repro/internal/trace"

// RecordWriter is the write side of a dataset sink: trace.BinaryWriter,
// trace.JSONLWriter, and store.Writer all satisfy it.
type RecordWriter interface {
	WriteTraceroute(*trace.Traceroute) error
	WritePing(*trace.Ping) error
}

// WriteSink adapts a RecordWriter into a Consumer. The campaign interfaces
// deliberately have no error path — measurement delivery never fails — so
// the sink remembers the first write error, skips subsequent writes, and
// lets the caller check Err after the campaign. Records are still counted
// past an error, keeping the count equal to what the campaign produced.
type WriteSink struct {
	w     RecordWriter
	err   error
	count int64
}

// NewWriteSink wraps a record writer.
func NewWriteSink(w RecordWriter) *WriteSink { return &WriteSink{w: w} }

// OnTraceroute writes the record unless a previous write failed.
func (s *WriteSink) OnTraceroute(tr *trace.Traceroute) {
	s.count++
	if s.err == nil {
		s.err = s.w.WriteTraceroute(tr)
	}
}

// OnPing writes the record unless a previous write failed.
func (s *WriteSink) OnPing(p *trace.Ping) {
	s.count++
	if s.err == nil {
		s.err = s.w.WritePing(p)
	}
}

// Err returns the first write error, if any.
func (s *WriteSink) Err() error { return s.err }

// Count returns how many records the campaign delivered (written or not).
func (s *WriteSink) Count() int64 { return s.count }
