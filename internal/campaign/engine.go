package campaign

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cdn"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/probe"
	"repro/internal/trace"
)

// maxWorkers bounds the pool size so a misconfigured worker count cannot
// spawn an unbounded number of goroutines.
const maxWorkers = 64

// NormalizeWorkers maps a configured worker count onto an engine pool
// size: values <= 0 select runtime.NumCPU(), and counts are clamped to
// maxWorkers. Every campaign type and command interprets its Workers
// setting through this one function.
func NormalizeWorkers(w int) int {
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > maxWorkers {
		w = maxWorkers
	}
	return w
}

// measurement is one slot in a round's schedule: a traceroute or a ping
// between two clusters. Measurements are pure functions of their
// coordinates (see simnet), so they may execute on any worker in any
// order.
type measurement struct {
	src, dst *cdn.Cluster
	v6       bool
	paris    bool // traceroutes only
	ping     bool // ping instead of traceroute
}

// result holds a completed measurement until in-order delivery.
type result struct {
	tr *trace.Traceroute
	pg *trace.Ping
}

// round is one unit of engine work: a task schedule at a single virtual
// timestamp. Workers claim task indices with an atomic counter; the last
// task completion closes fin.
type round struct {
	at    time.Duration
	tasks []measurement
	out   []result
	next  atomic.Int64
	done  atomic.Int64
	fin   chan struct{}
	// ready marks per-slot completion so an abandoned round can tell
	// finished results from unfinished ones; nil unless a watchdog is
	// armed.
	ready []atomic.Bool
	// abandoned is set by the round watchdog; workers stop claiming tasks
	// once they observe it.
	abandoned atomic.Bool
}

// Engine is the shared parallel measurement executor: a persistent pool
// of workers that all campaign types dispatch rounds to. Workers are
// spawned once and reused across rounds; within a round, tasks are
// claimed by atomic increment (no locks on the hot path) and results are
// delivered to the consumer in schedule order, so the record stream is
// bit-identical to a sequential run regardless of worker count.
//
// An Engine with one worker executes rounds inline on the caller's
// goroutine, making the sequential reference path and the parallel path
// share one implementation.
type Engine struct {
	p       *probe.Prober
	workers int
	feed    chan *round
	wg      sync.WaitGroup
	scratch []result // reused between rounds; only one round is in flight
	o       engineObs
	rec     *flight.Recorder

	// Resilience state (see runtime.go). All zero-valued — and all code
	// paths unchanged — unless SetResilience arms it.
	res            Resilience
	health         map[trace.PairKey]*pairHealth
	roundIdx       int64
	quarCount      int
	agentDownRound atomic.Int64
	ready          []atomic.Bool // reused per-slot flags; dropped after an abandoned round
	filterBuf      []measurement
	// testExec lets tests intercept measurement execution (e.g. to wedge a
	// task under the watchdog). Returns ok=false to fall through to the
	// prober.
	testExec func(measurement, time.Duration) (result, bool)
}

// Metric names exported by Instrument. Worker busy time carries a worker
// label; the caller's inline drain is the highest worker index.
const (
	MetricTasks        = "s2s_engine_tasks_total"
	MetricRounds       = "s2s_engine_rounds_total"
	MetricWorkerBusyNS = "s2s_engine_worker_busy_ns_total"
	MetricReorderDepth = "s2s_engine_reorder_depth"
	MetricVirtualNS    = "s2s_campaign_virtual_ns"
)

// engineObs is the engine's telemetry; all fields nil (one predicted
// branch per event) until Instrument attaches a registry.
type engineObs struct {
	tasks   *obs.Counter
	rounds  *obs.Counter
	reorder *obs.Gauge
	virtual *obs.Gauge
	busy    []*obs.Counter // per worker, nanoseconds inside drain

	// Resilience telemetry (runtime.go).
	retries   *obs.Counter
	retriesOK *obs.Counter
	skips     *obs.Counter
	quarAdds  *obs.Counter
	quarGauge *obs.Gauge
	degraded  *obs.Counter
	agentDown *obs.Counter
	abandoned *obs.Counter
}

// Instrument registers the engine's counters in reg: tasks executed,
// rounds dispatched, per-worker busy time, the result-reorder buffer
// depth, and the campaign's virtual-clock progress. A nil registry is a
// no-op. Call before the first RunRound. Metrics observe execution only —
// the record stream stays byte-identical to an uninstrumented run.
func (e *Engine) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	e.o.tasks = reg.Counter(MetricTasks, "measurement tasks executed")
	e.o.rounds = reg.Counter(MetricRounds, "campaign rounds dispatched")
	e.o.reorder = reg.Gauge(MetricReorderDepth, "result-reorder buffer depth of the current round (tasks held for in-order delivery)")
	e.o.virtual = reg.Gauge(MetricVirtualNS, "virtual-clock position of the campaign (nanoseconds since start)")
	e.o.busy = make([]*obs.Counter, e.workers)
	for i := range e.o.busy {
		e.o.busy[i] = reg.Counter(fmt.Sprintf(`%s{worker="%d"}`, MetricWorkerBusyNS, i),
			"time each worker spent executing round tasks, in nanoseconds")
	}
	e.instrumentResilience(reg)
}

// Trace attaches a flight recorder: every round and every worker batch
// becomes a span, and the pool size is announced as an engine event. A nil
// recorder is a no-op (the default: one predicted branch per round).
// Like Instrument, tracing observes execution only — the record stream
// stays byte-identical to an untraced run.
func (e *Engine) Trace(rec *flight.Recorder) {
	e.rec = rec
	rec.Event(flight.PhEngine, 0, flight.Attrs{N: int64(e.workers)})
}

// NewEngine returns an engine over the prober with NormalizeWorkers(workers)
// workers. Callers must Close it to release the pool.
func NewEngine(p *probe.Prober, workers int) *Engine {
	e := &Engine{p: p, workers: NormalizeWorkers(workers)}
	if e.workers > 1 {
		e.feed = make(chan *round, e.workers)
		for i := 0; i < e.workers-1; i++ {
			e.wg.Add(1)
			go e.worker(e.feed, i)
		}
	}
	return e
}

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.workers }

// Close stops the pool. The engine must not be used afterwards.
func (e *Engine) Close() {
	if e.feed != nil {
		close(e.feed)
		e.feed = nil
	}
	e.wg.Wait()
}

// worker receives its feed as an argument so that Close nilling the field
// cannot race with a worker that has not yet entered its receive loop. w
// is the worker's index for busy-time attribution; the caller's inline
// drain uses index workers-1.
func (e *Engine) worker(feed <-chan *round, w int) {
	defer e.wg.Done()
	for r := range feed {
		e.drain(r, w)
	}
}

// drain claims and executes tasks until the round is exhausted, billing
// the elapsed time to worker w.
func (e *Engine) drain(r *round, w int) {
	var t0 time.Time
	if e.o.busy != nil {
		t0 = time.Now()
	}
	sp := e.rec.Begin(flight.PhWorker, r.at)
	executed := int64(0)
	n := int64(len(r.tasks))
	for {
		if r.abandoned.Load() {
			break
		}
		i := r.next.Add(1) - 1
		if i >= n {
			break
		}
		r.out[i] = e.exec(r.tasks[i], r.at)
		if r.ready != nil {
			// The release store publishes out[i]: delivery only reads a
			// slot whose ready flag it observed true.
			r.ready[i].Store(true)
		}
		executed++
		e.o.tasks.Inc()
		if r.done.Add(1) == n {
			close(r.fin)
		}
	}
	sp.End(flight.Attrs{ID: int64(w), N: executed})
	if e.o.busy != nil {
		e.o.busy[w].Add(time.Since(t0).Nanoseconds())
	}
}

// RunRound executes one round's schedule at virtual time at and delivers
// the records to c in schedule order. Under a Resilience policy the
// schedule is first filtered against the quarantine list, every delivered
// result is booked into pair health, and a round that degraded (crashed
// agents or a fired watchdog) is accounted in metrics and the flight
// record.
func (e *Engine) RunRound(tasks []measurement, at time.Duration, c Consumer) {
	e.roundIdx++
	tasks = e.filterTasks(tasks)
	if len(tasks) == 0 {
		return
	}
	// A streaming consumer relinquishes each record inside its On* call,
	// so the round can recycle records into the trace pool right after
	// delivery. Retaining consumers own their records forever.
	recycle := streams(c)
	e.o.rounds.Inc()
	e.o.virtual.Set(float64(at))
	rsp := e.rec.Begin(flight.PhRound, at)
	if e.workers <= 1 || len(tasks) == 1 {
		var t0 time.Time
		if e.o.busy != nil {
			t0 = time.Now()
		}
		wsp := e.rec.Begin(flight.PhWorker, at)
		for _, tk := range tasks {
			res := e.exec(tk, at)
			e.book(tk, res, at)
			if res.pg != nil {
				c.OnPing(res.pg)
			} else {
				c.OnTraceroute(res.tr)
			}
			if recycle {
				recycleResult(res)
			}
			e.o.tasks.Inc()
		}
		// The caller's inline drain is always the last worker index.
		wsp.End(flight.Attrs{ID: int64(e.workers - 1), N: int64(len(tasks))})
		if e.o.busy != nil {
			e.o.busy[e.workers-1].Add(time.Since(t0).Nanoseconds())
		}
		e.finishRound(rsp, at, int64(len(tasks)), 0)
		return
	}
	if cap(e.scratch) < len(tasks) {
		e.scratch = make([]result, len(tasks))
	}
	e.o.reorder.Set(float64(len(tasks)))
	out := e.scratch[:len(tasks)]
	r := &round{at: at, tasks: tasks, out: out, fin: make(chan struct{})}
	wd := e.res.Watchdog
	if wd > 0 {
		if cap(e.ready) < len(tasks) {
			e.ready = make([]atomic.Bool, len(tasks))
		}
		r.ready = e.ready[:len(tasks)]
		for i := range r.ready {
			r.ready[i].Store(false)
		}
	}
	if wd <= 0 {
		// Wake the pool, then join it: the caller drains too, so the round
		// completes even while workers are still picking the round up.
		for i := 0; i < e.workers-1; i++ {
			e.feed <- r
		}
		e.drain(r, e.workers-1)
		<-r.fin
	} else {
		// Watchdog armed: the caller must stay free to abandon the round,
		// so a dedicated goroutine drains in its place and pool wake-ups
		// are non-blocking (a worker wedged on a previous abandoned round
		// must not stall this one).
		for i := 0; i < e.workers-1; i++ {
			select {
			case e.feed <- r:
			default:
			}
		}
		go e.drain(r, e.workers-1)
		timer := time.NewTimer(wd)
		select {
		case <-r.fin:
			timer.Stop()
		case <-timer.C:
			r.abandoned.Store(true)
		}
	}
	aborted := r.abandoned.Load()
	abandonedTasks := int64(0)
	for i := range out {
		var res result
		if aborted && !r.ready[i].Load() {
			// The slot's worker may still be mid-write; out[i] must not be
			// read until its ready flag has been observed true.
			res = failedResult(tasks[i], at)
			abandonedTasks++
			e.o.abandoned.Inc()
		} else {
			res = out[i]
		}
		e.book(tasks[i], res, at)
		if res.pg != nil {
			c.OnPing(res.pg)
		} else {
			c.OnTraceroute(res.tr)
		}
		if recycle {
			recycleResult(res)
		}
		if !aborted {
			out[i] = result{}
		}
	}
	if aborted {
		// Wedged workers may still write into these arrays; orphan them so
		// the next round cannot observe the stragglers.
		e.scratch, e.ready = nil, nil
	}
	e.finishRound(rsp, at, int64(len(tasks)), abandonedTasks)
}

// finishRound closes the round span and books a degraded round (crashed
// agents or watchdog-abandoned tasks) into metrics and the flight record.
func (e *Engine) finishRound(rsp flight.Span, at time.Duration, tasks, abandonedTasks int64) {
	agentDown := e.agentDownRound.Swap(0)
	if agentDown > 0 || abandonedTasks > 0 {
		e.o.degraded.Inc()
		e.rec.Event(flight.PhDegraded, at, flight.Attrs{N: agentDown, M: abandonedTasks})
	}
	rsp.End(flight.Attrs{N: tasks})
}
