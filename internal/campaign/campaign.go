// Package campaign reproduces the paper's measurement campaigns on the
// virtual clock:
//
//   - the long-term data set (§2.1): traceroutes between all pairs of
//     dual-stack servers, in both directions and over both protocols, once
//     every three hours for 16 months, with IPv4 switching from classic to
//     Paris traceroute partway through (November 2014);
//   - the short-term ping mesh (§2.2): servers ping a preselected target
//     set every 15 minutes for a week;
//   - the short-term traceroute campaigns (§2.2, §5.2): 30-minute
//     traceroutes between selected pairs for weeks.
//
// Every measurement in a round is annotated with the round's timestamp, as
// the paper does. Consumers receive records in a deterministic order.
package campaign

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/cdn"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/probe"
	"repro/internal/trace"
)

// Consumer receives measurement records as they are produced.
type Consumer interface {
	OnTraceroute(*trace.Traceroute)
	OnPing(*trace.Ping)
}

// RecordStreamer marks a Consumer that never retains a record past the
// On* call that delivered it (it streams: encodes, counts, forwards).
// The engine recycles records delivered to a streaming consumer back to
// the trace pool, eliminating the dominant per-measurement allocation.
// Consumers without the marker — or whose StreamsRecords reports false —
// keep ownership of every delivered record, exactly as before pooling.
type RecordStreamer interface {
	StreamsRecords() bool
}

// streams reports whether every record delivered to c may be recycled
// after delivery. A Multi streams only when all members do.
func streams(c Consumer) bool {
	if m, ok := c.(Multi); ok {
		if len(m) == 0 {
			return false
		}
		for _, sub := range m {
			if !streams(sub) {
				return false
			}
		}
		return true
	}
	s, ok := c.(RecordStreamer)
	return ok && s.StreamsRecords()
}

// Collector is an in-memory Consumer.
type Collector struct {
	Traceroutes []*trace.Traceroute
	Pings       []*trace.Ping
}

// OnTraceroute stores the record.
func (c *Collector) OnTraceroute(tr *trace.Traceroute) { c.Traceroutes = append(c.Traceroutes, tr) }

// OnPing stores the record.
func (c *Collector) OnPing(p *trace.Ping) { c.Pings = append(c.Pings, p) }

// Funcs adapts functions to Consumer; nil fields drop records.
type Funcs struct {
	Traceroute func(*trace.Traceroute)
	Ping       func(*trace.Ping)
}

// OnTraceroute forwards to the function when set.
func (f Funcs) OnTraceroute(tr *trace.Traceroute) {
	if f.Traceroute != nil {
		f.Traceroute(tr)
	}
}

// OnPing forwards to the function when set.
func (f Funcs) OnPing(p *trace.Ping) {
	if f.Ping != nil {
		f.Ping(p)
	}
}

// Multi fans records out to several consumers.
type Multi []Consumer

// OnTraceroute forwards to every consumer.
func (m Multi) OnTraceroute(tr *trace.Traceroute) {
	for _, c := range m {
		c.OnTraceroute(tr)
	}
}

// OnPing forwards to every consumer.
func (m Multi) OnPing(p *trace.Ping) {
	for _, c := range m {
		c.OnPing(p)
	}
}

// LongTermConfig parameterizes the long-term full-mesh campaign.
type LongTermConfig struct {
	// Servers is the dual-stack mesh (the paper used ~600).
	Servers []*cdn.Cluster
	// Duration of the campaign (the paper: 485 days) and Interval between
	// rounds (the paper: 3 hours).
	Duration, Interval time.Duration
	// ParisSwitchAt is when IPv4 measurements switch from classic to Paris
	// traceroute (the paper: November 2014 ≈ day 300 of 485). Zero means
	// Paris from the start; a value ≥ Duration means classic throughout.
	ParisSwitchAt time.Duration
	// Workers sizes the measurement engine: <= 0 selects all cores, 1
	// forces sequential execution. The record stream is identical either
	// way (see Engine).
	Workers int
	// Metrics, when non-nil, receives the engine's telemetry (see
	// Engine.Instrument). Metrics never alter the record stream.
	Metrics *obs.Registry
	// Trace, when non-nil, records campaign/round/worker spans to the
	// flight recorder (see Engine.Trace). Tracing never alters the record
	// stream either.
	Trace *flight.Recorder
	// Resilience arms fault-aware execution: retries, quarantine, and the
	// round watchdog (see Resilience). The zero value changes nothing.
	Resilience Resilience
	// Checkpoint, when non-nil, writes periodic resume points (see
	// Checkpointer). Resume, when non-nil, continues an interrupted run
	// from its checkpoint; the resumed stream is byte-identical to an
	// uninterrupted run once the sink is positioned at the checkpoint.
	Checkpoint *Checkpointer
	Resume     *Checkpoint
	// CrashAt, when positive, aborts the campaign with ErrInjectedCrash
	// once the virtual clock reaches it (resume testing).
	CrashAt time.Duration
	// Abort is polled after every round; a non-nil error stops the
	// campaign with a SinkError (wire WriteSink.Err here).
	Abort func() error
}

// Validate checks the configuration.
func (cfg *LongTermConfig) Validate() error {
	if len(cfg.Servers) < 2 {
		return fmt.Errorf("campaign: need >= 2 servers, got %d", len(cfg.Servers))
	}
	for _, s := range cfg.Servers {
		if !s.DualStack() {
			return fmt.Errorf("campaign: server %d is not dual-stack", s.ID)
		}
	}
	if cfg.Duration <= 0 || cfg.Interval <= 0 {
		return fmt.Errorf("campaign: non-positive duration or interval")
	}
	return nil
}

// longTermSchedule builds one round's task list: both protocols for every
// directed pair, in the order the paper's dataset (and the sequential
// reference) uses.
func longTermSchedule(servers []*cdn.Cluster, paris4 bool, buf []measurement) []measurement {
	buf = buf[:0]
	for _, src := range servers {
		for _, dst := range servers {
			if src.ID == dst.ID {
				continue
			}
			buf = append(buf,
				measurement{src: src, dst: dst, v6: false, paris: paris4},
				measurement{src: src, dst: dst, v6: true},
			)
		}
	}
	return buf
}

// LongTerm runs the long-term campaign, streaming records to c. Rounds
// execute on cfg.Workers workers; the record stream is independent of the
// worker count.
func LongTerm(p *probe.Prober, cfg LongTermConfig, c Consumer) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	e := NewEngine(p, cfg.Workers)
	defer e.Close()
	e.SetResilience(cfg.Resilience)
	e.Instrument(cfg.Metrics)
	e.Trace(cfg.Trace)
	var tasks []measurement
	scheduledParis := false
	rc := &runControl{
		e: e, c: c, kind: "longterm",
		duration: cfg.Duration, interval: cfg.Interval,
		schedule: func(at time.Duration) []measurement {
			paris4 := at >= cfg.ParisSwitchAt
			if tasks == nil || paris4 != scheduledParis {
				tasks = longTermSchedule(cfg.Servers, paris4, tasks)
				scheduledParis = paris4
			}
			return tasks
		},
		ckpt: cfg.Checkpoint, resume: cfg.Resume,
		crashAt: cfg.CrashAt, abort: cfg.Abort, rec: cfg.Trace,
	}
	sp := cfg.Trace.Begin(flight.PhCampaign, 0)
	rounds, err := rc.run()
	sp.End(flight.Attrs{S: "longterm", N: rounds})
	return err
}

// PingMeshConfig parameterizes the short-term ping campaign.
type PingMeshConfig struct {
	// Pairs are directed (source, target) pairs. Both protocols are
	// measured where both endpoints are dual-stack.
	Pairs              [][2]*cdn.Cluster
	Duration, Interval time.Duration
	// Workers sizes the measurement engine (see LongTermConfig.Workers).
	Workers int
	// Metrics receives engine telemetry (see LongTermConfig.Metrics).
	Metrics *obs.Registry
	// Trace records flight spans (see LongTermConfig.Trace).
	Trace *flight.Recorder
	// Resilience, Checkpoint, Resume, CrashAt and Abort behave as on
	// LongTermConfig.
	Resilience Resilience
	Checkpoint *Checkpointer
	Resume     *Checkpoint
	CrashAt    time.Duration
	Abort      func() error
}

// PingMesh runs the ping campaign.
func PingMesh(p *probe.Prober, cfg PingMeshConfig, c Consumer) error {
	if len(cfg.Pairs) == 0 {
		return fmt.Errorf("campaign: no pairs")
	}
	if cfg.Duration <= 0 || cfg.Interval <= 0 {
		return fmt.Errorf("campaign: non-positive duration or interval")
	}
	// The schedule is identical every round.
	tasks := make([]measurement, 0, len(cfg.Pairs)*2)
	for _, pair := range cfg.Pairs {
		src, dst := pair[0], pair[1]
		tasks = append(tasks, measurement{src: src, dst: dst, ping: true})
		if src.DualStack() && dst.DualStack() {
			tasks = append(tasks, measurement{src: src, dst: dst, v6: true, ping: true})
		}
	}
	e := NewEngine(p, cfg.Workers)
	defer e.Close()
	e.SetResilience(cfg.Resilience)
	e.Instrument(cfg.Metrics)
	e.Trace(cfg.Trace)
	rc := &runControl{
		e: e, c: c, kind: "pingmesh",
		duration: cfg.Duration, interval: cfg.Interval,
		schedule: func(time.Duration) []measurement { return tasks },
		ckpt:     cfg.Checkpoint, resume: cfg.Resume,
		crashAt: cfg.CrashAt, abort: cfg.Abort, rec: cfg.Trace,
	}
	sp := cfg.Trace.Begin(flight.PhCampaign, 0)
	rounds, err := rc.run()
	sp.End(flight.Attrs{S: "pingmesh", N: rounds})
	return err
}

// TracerouteCampaignConfig parameterizes the short-term traceroute
// campaigns (30-minute rounds in the paper).
type TracerouteCampaignConfig struct {
	Pairs              [][2]*cdn.Cluster
	Duration, Interval time.Duration
	// BothDirections also measures dst→src each round (the paper measured
	// "in either direction").
	BothDirections bool
	// Paris selects the traceroute flavor; V6 also measures IPv6 for
	// dual-stack pairs.
	Paris bool
	V6    bool
	// Workers sizes the measurement engine (see LongTermConfig.Workers).
	Workers int
	// Metrics receives engine telemetry (see LongTermConfig.Metrics).
	Metrics *obs.Registry
	// Trace records flight spans (see LongTermConfig.Trace).
	Trace *flight.Recorder
	// Resilience, Checkpoint, Resume, CrashAt and Abort behave as on
	// LongTermConfig.
	Resilience Resilience
	Checkpoint *Checkpointer
	Resume     *Checkpoint
	CrashAt    time.Duration
	Abort      func() error
}

// TracerouteCampaign runs the campaign.
func TracerouteCampaign(p *probe.Prober, cfg TracerouteCampaignConfig, c Consumer) error {
	if len(cfg.Pairs) == 0 {
		return fmt.Errorf("campaign: no pairs")
	}
	if cfg.Duration <= 0 || cfg.Interval <= 0 {
		return fmt.Errorf("campaign: non-positive duration or interval")
	}
	// The schedule is identical every round.
	var tasks []measurement
	schedule := func(src, dst *cdn.Cluster) {
		tasks = append(tasks, measurement{src: src, dst: dst, paris: cfg.Paris})
		if cfg.V6 && src.DualStack() && dst.DualStack() {
			tasks = append(tasks, measurement{src: src, dst: dst, v6: true, paris: cfg.Paris})
		}
	}
	for _, pair := range cfg.Pairs {
		schedule(pair[0], pair[1])
		if cfg.BothDirections {
			schedule(pair[1], pair[0])
		}
	}
	e := NewEngine(p, cfg.Workers)
	defer e.Close()
	e.SetResilience(cfg.Resilience)
	e.Instrument(cfg.Metrics)
	e.Trace(cfg.Trace)
	rc := &runControl{
		e: e, c: c, kind: "traceroute",
		duration: cfg.Duration, interval: cfg.Interval,
		schedule: func(time.Duration) []measurement { return tasks },
		ckpt:     cfg.Checkpoint, resume: cfg.Resume,
		crashAt: cfg.CrashAt, abort: cfg.Abort, rec: cfg.Trace,
	}
	sp := cfg.Trace.Begin(flight.PhCampaign, 0)
	rounds, err := rc.run()
	sp.End(flight.Attrs{S: "traceroute", N: rounds})
	return err
}

// SelectMesh picks up to n dual-stack clusters spread across the platform
// — the long-term mesh population ("each located in a different server
// cluster ... over 70 countries"). Clusters hosted in distinct ASes are
// preferred (server-to-server paths should cross the core); remaining slots
// are filled allowing host-AS reuse at distinct cities.
func SelectMesh(p *cdn.Platform, n int, seed int64) []*cdn.Cluster {
	rng := rand.New(rand.NewSource(seed))
	ds := p.DualStackClusters()
	shuffled := append([]*cdn.Cluster(nil), ds...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	type site struct {
		as   int64
		city int
	}
	seenAS := make(map[int64]bool)
	seenSite := make(map[site]bool)
	var out []*cdn.Cluster
	for _, c := range shuffled {
		as := int64(c.HostAS)
		if seenAS[as] {
			continue
		}
		seenAS[as] = true
		seenSite[site{as, c.City}] = true
		out = append(out, c)
		if len(out) == n {
			return out
		}
	}
	for _, c := range shuffled {
		k := site{int64(c.HostAS), c.City}
		if seenSite[k] {
			continue
		}
		seenSite[k] = true
		out = append(out, c)
		if len(out) == n {
			break
		}
	}
	return out
}

// FullMeshPairs expands servers into all ordered pairs.
func FullMeshPairs(servers []*cdn.Cluster) [][2]*cdn.Cluster {
	var out [][2]*cdn.Cluster
	for _, a := range servers {
		for _, b := range servers {
			if a.ID != b.ID {
				out = append(out, [2]*cdn.Cluster{a, b})
			}
		}
	}
	return out
}

// UnorderedPairs expands servers into all unordered pairs.
func UnorderedPairs(servers []*cdn.Cluster) [][2]*cdn.Cluster {
	var out [][2]*cdn.Cluster
	for i := 0; i < len(servers); i++ {
		for j := i + 1; j < len(servers); j++ {
			out = append(out, [2]*cdn.Cluster{servers[i], servers[j]})
		}
	}
	return out
}

// ColocatedPairs returns unordered pairs of clusters at the same city — the
// paper's full-mesh campaign between colocated clusters.
func ColocatedPairs(p *cdn.Platform) [][2]*cdn.Cluster {
	byCity := make(map[int][]*cdn.Cluster)
	var cities []int
	for _, c := range p.Clusters {
		if byCity[c.City] == nil {
			cities = append(cities, c.City)
		}
		byCity[c.City] = append(byCity[c.City], c)
	}
	sort.Ints(cities)
	var out [][2]*cdn.Cluster
	for _, city := range cities {
		cs := byCity[city]
		for i := 0; i < len(cs); i++ {
			for j := i + 1; j < len(cs); j++ {
				out = append(out, [2]*cdn.Cluster{cs[i], cs[j]})
			}
		}
	}
	return out
}
