package campaign

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cdn"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/probe"
	"repro/internal/trace"
)

// attachStandardPlan generates the standard fault plan for the prober's
// world and wires it into the simnet and the prober, mirroring what
// s2sgen -faults standard does.
func attachStandardPlan(t testing.TB, p *probe.Prober, plat *cdn.Platform, seed int64, days int) *faults.Plan {
	t.Helper()
	dur := time.Duration(days) * 24 * time.Hour
	net := p.Net.R
	plan, err := faults.Generate(faults.Standard(seed, dur, len(plat.Clusters), len(net.Routers), len(net.Links)))
	if err != nil {
		t.Fatal(err)
	}
	p.Net.SetFaults(plan)
	p.Faults = plan
	return plan
}

// TestFaultedCampaignBitIdentical: with a fault plan, retries, and
// quarantine all armed, the record stream must still be byte-identical
// across worker counts.
func TestFaultedCampaignBitIdentical(t *testing.T) {
	_, platform := newProber(t, 41, 3, 60)
	servers := SelectMesh(platform, 5, 41)
	pairs := UnorderedPairs(servers)
	run := func(p *probe.Prober, w int, c Consumer) error {
		plan := attachStandardPlan(t, p, platform, 41, 3)
		return TracerouteCampaign(p, TracerouteCampaignConfig{
			Pairs:          pairs,
			Duration:       6 * time.Hour,
			Interval:       30 * time.Minute,
			BothDirections: true,
			V6:             true,
			Workers:        w,
			Resilience: Resilience{
				Faults:          plan,
				Retry:           RetryPolicy{MaxAttempts: 3},
				QuarantineAfter: 3,
			},
		}, c)
	}
	seq, par := runTwice(t, 41, run, 8)
	if len(seq) == 0 {
		t.Fatal("empty stream")
	}
	if !bytes.Equal(seq, par) {
		t.Fatalf("faulted parallel stream differs from sequential (%d vs %d bytes)", len(par), len(seq))
	}
}

// TestRetryRecoversTransient: a measurement that fails its first attempt
// and succeeds on retry delivers the retry's record, stamped at the
// backed-off virtual time.
func TestRetryRecoversTransient(t *testing.T) {
	p, platform := newProber(t, 42, 1, 40)
	e := NewEngine(p, 1)
	defer e.Close()
	e.SetResilience(Resilience{Retry: RetryPolicy{MaxAttempts: 3}})
	reg := obs.NewRegistry()
	e.Instrument(reg)

	var calls []time.Duration
	e.testExec = func(tk measurement, at time.Duration) (result, bool) {
		calls = append(calls, at)
		res := failedResult(tk, at)
		if len(calls) >= 2 {
			res.pg.Lost = false
		}
		return res, true
	}
	var col Collector
	task := measurement{src: platform.Clusters[0], dst: platform.Clusters[1], ping: true}
	e.RunRound([]measurement{task}, time.Hour, &col)

	if len(calls) != 2 {
		t.Fatalf("attempts = %d, want 2", len(calls))
	}
	if calls[0] != time.Hour || calls[1] != time.Hour+DefaultBackoff {
		t.Fatalf("attempt times = %v, want [1h, 1h+%v]", calls, DefaultBackoff)
	}
	if len(col.Pings) != 1 || col.Pings[0].Lost || col.Pings[0].At != time.Hour+DefaultBackoff {
		t.Fatalf("delivered record wrong: %+v", col.Pings)
	}
	if got := reg.Counter(MetricRetriesAttempted, "").Value(); got != 1 {
		t.Errorf("retries attempted = %d, want 1", got)
	}
	if got := reg.Counter(MetricRetriesSucceeded, "").Value(); got != 1 {
		t.Errorf("retries succeeded = %d, want 1", got)
	}
}

// TestQuarantineLifecycle: consecutive failures quarantine a pair, the
// quarantined pair is skipped off-cadence and re-probed on cadence, and a
// successful re-probe releases it.
func TestQuarantineLifecycle(t *testing.T) {
	p, platform := newProber(t, 43, 1, 40)
	e := NewEngine(p, 1)
	defer e.Close()
	e.SetResilience(Resilience{QuarantineAfter: 2, ReprobeEvery: 4})
	reg := obs.NewRegistry()
	e.Instrument(reg)

	healthy := true
	execs := 0
	e.testExec = func(tk measurement, at time.Duration) (result, bool) {
		execs++
		res := failedResult(tk, at)
		res.pg.Lost = !healthy
		return res, true
	}
	task := measurement{src: platform.Clusters[0], dst: platform.Clusters[1], ping: true}
	round := func() int {
		before := execs
		var col Collector
		e.RunRound([]measurement{task}, time.Duration(e.roundIdx)*time.Minute, &col)
		return execs - before
	}

	// Rounds 1-2 fail: the pair quarantines at the threshold.
	healthy = false
	round()
	round()
	if got := reg.Gauge(MetricQuarantinedPairs, "").Value(); got != 1 {
		t.Fatalf("quarantined pairs = %v, want 1", got)
	}
	// Rounds 3-5 are off-cadence: the pair is skipped, no probe runs.
	for r := 3; r <= 5; r++ {
		if n := round(); n != 0 {
			t.Fatalf("round %d executed %d probes, want 0 (quarantined)", r, n)
		}
	}
	// Round 6 is the re-probe cadence ((6-2)%4 == 0); it fails, so the
	// cadence restarts from round 6.
	if n := round(); n != 1 {
		t.Fatalf("re-probe round executed %d probes, want 1", n)
	}
	for r := 7; r <= 9; r++ {
		if n := round(); n != 0 {
			t.Fatalf("round %d executed %d probes, want 0 (cadence restarted)", r, n)
		}
	}
	// Round 10 re-probes again; this one succeeds and releases the pair.
	healthy = true
	if n := round(); n != 1 {
		t.Fatalf("second re-probe executed %d probes, want 1", n)
	}
	if got := reg.Gauge(MetricQuarantinedPairs, "").Value(); got != 0 {
		t.Fatalf("quarantined pairs after release = %v, want 0", got)
	}
	if n := round(); n != 1 {
		t.Fatalf("released pair not probed (%d probes)", n)
	}
	if reg.Counter(MetricQuarantineSkips, "").Value() == 0 {
		t.Error("quarantine skips counter never moved")
	}
	if reg.Counter(MetricQuarantineAdds, "").Value() != 1 {
		t.Error("quarantine adds counter != 1")
	}
}

// TestWatchdogAbandonsWedgedRound: a wedged task must not hang the
// campaign — the watchdog abandons the round, the wedged slot books a
// degraded failure record, and the engine survives to run later rounds.
func TestWatchdogAbandonsWedgedRound(t *testing.T) {
	p, platform := newProber(t, 44, 1, 40)
	e := NewEngine(p, 4)
	defer e.Close()
	e.SetResilience(Resilience{Watchdog: 100 * time.Millisecond})
	reg := obs.NewRegistry()
	e.Instrument(reg)

	wedge := make(chan struct{})
	defer close(wedge)
	wedged := platform.Clusters[2]
	e.testExec = func(tk measurement, at time.Duration) (result, bool) {
		if tk.dst == wedged {
			<-wedge // blocks until the test ends
		}
		res := failedResult(tk, at)
		res.pg.Lost = false
		return res, true
	}
	tasks := []measurement{
		{src: platform.Clusters[0], dst: platform.Clusters[1], ping: true},
		{src: platform.Clusters[0], dst: wedged, ping: true},
		{src: platform.Clusters[0], dst: platform.Clusters[3], ping: true},
	}
	var col Collector
	done := make(chan struct{})
	go func() {
		e.RunRound(tasks, time.Hour, &col)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("watchdog never fired; round hung")
	}
	if len(col.Pings) != len(tasks) {
		t.Fatalf("delivered %d records, want %d (abandoned slots must still deliver)", len(col.Pings), len(tasks))
	}
	if !col.Pings[1].Lost {
		t.Error("wedged task's record not booked as lost")
	}
	if reg.Counter(MetricAbandonedTasks, "").Value() == 0 {
		t.Error("abandoned-tasks counter never moved")
	}
	if reg.Counter(MetricDegradedRounds, "").Value() != 1 {
		t.Error("degraded-rounds counter != 1")
	}
	// The engine must survive the abandoned round.
	var col2 Collector
	e.RunRound([]measurement{tasks[0], tasks[2]}, 2*time.Hour, &col2)
	if len(col2.Pings) != 2 {
		t.Fatalf("post-abandon round delivered %d records, want 2", len(col2.Pings))
	}
}

// failWriter fails every write after the first n.
type failWriter struct {
	n    int
	seen int
}

func (f *failWriter) WriteTraceroute(tr *trace.Traceroute) error {
	f.seen++
	if f.seen > f.n {
		return fmt.Errorf("disk full")
	}
	return nil
}

func (f *failWriter) WritePing(p *trace.Ping) error {
	f.seen++
	if f.seen > f.n {
		return fmt.Errorf("disk full")
	}
	return nil
}

// TestSinkErrorAborts: a failing dataset sink aborts the campaign with a
// SinkError and counts every failed write.
func TestSinkErrorAborts(t *testing.T) {
	p, platform := newProber(t, 45, 1, 40)
	servers := SelectMesh(platform, 4, 45)
	sink := NewWriteSink(&failWriter{n: 3})
	reg := obs.NewRegistry()
	sink.Instrument(reg)
	err := PingMesh(p, PingMeshConfig{
		Pairs:    FullMeshPairs(servers),
		Duration: 2 * time.Hour,
		Interval: 15 * time.Minute,
		Abort:    sink.Err,
	}, sink)
	var sinkErr *SinkError
	if !errors.As(err, &sinkErr) {
		t.Fatalf("campaign returned %v, want a *SinkError", err)
	}
	if sink.Err() == nil {
		t.Fatal("sink reports no error")
	}
	if reg.Counter(MetricSinkWriteErrors, "").Value() == 0 {
		t.Error("sink write-error counter never moved")
	}
}

// bufCheckpointWriter is the test's flat sink: records encode into a
// buffer, Checkpoint flushes and reports the byte offset (the same
// contract the CLIs implement over an *os.File).
type bufCheckpointWriter struct {
	buf bytes.Buffer
	w   *trace.BinaryWriter
}

func newBufCheckpointWriter() *bufCheckpointWriter {
	b := &bufCheckpointWriter{}
	b.w = trace.NewBinaryWriter(&b.buf)
	return b
}

func (b *bufCheckpointWriter) WriteTraceroute(tr *trace.Traceroute) error {
	return b.w.WriteTraceroute(tr)
}
func (b *bufCheckpointWriter) WritePing(p *trace.Ping) error { return b.w.WritePing(p) }
func (b *bufCheckpointWriter) Checkpoint() (int64, error) {
	if err := b.w.Flush(); err != nil {
		return 0, err
	}
	return int64(b.buf.Len()), nil
}

// TestCrashResumeByteIdentical: a campaign killed by an injected crash
// and resumed from its checkpoint produces a byte-identical stream to an
// uninterrupted run — including quarantine state carried across the
// restart.
func TestCrashResumeByteIdentical(t *testing.T) {
	const seed = 46
	_, platform := newProber(t, seed, 3, 60)
	servers := SelectMesh(platform, 5, seed)
	pairs := UnorderedPairs(servers)

	cfg := func(p *probe.Prober) TracerouteCampaignConfig {
		plan := attachStandardPlan(t, p, platform, seed, 3)
		return TracerouteCampaignConfig{
			Pairs:          pairs,
			Duration:       4 * time.Hour,
			Interval:       15 * time.Minute,
			BothDirections: true,
			Workers:        4,
			Resilience: Resilience{
				Faults:          plan,
				Retry:           RetryPolicy{MaxAttempts: 2},
				QuarantineAfter: 2,
				ReprobeEvery:    3,
			},
		}
	}

	// Reference: one uninterrupted run.
	p1, _ := newProber(t, seed, 3, 60)
	clean := newBufCheckpointWriter()
	if err := TracerouteCampaign(p1, cfg(p1), NewWriteSink(clean)); err != nil {
		t.Fatal(err)
	}
	if _, err := clean.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if clean.buf.Len() == 0 {
		t.Fatal("empty reference stream")
	}

	// Crash run: checkpoint every 30 virtual minutes, die at 1h10m.
	ckptPath := filepath.Join(t.TempDir(), "run.ckpt")
	p2, _ := newProber(t, seed, 3, 60)
	crashed := newBufCheckpointWriter()
	crashedSink := NewWriteSink(crashed)
	c2 := cfg(p2)
	c2.Checkpoint = &Checkpointer{
		Path:     ckptPath,
		Interval: 30 * time.Minute,
		Sink:     crashedSink,
		Records:  crashedSink.Count,
		Seed:     seed,
	}
	c2.CrashAt = 70 * time.Minute
	err := TracerouteCampaign(p2, c2, crashedSink)
	if !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("crash run returned %v, want ErrInjectedCrash", err)
	}

	// Resume: reload the checkpoint, truncate the flat stream to the
	// committed offset (what s2sgen -resume does to the file), rerun.
	cp, err := LoadCheckpoint(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Compatible("", seed, "", ""); err != nil {
		t.Fatal(err)
	}
	if cp.SinkPos > int64(crashed.buf.Len()) {
		t.Fatalf("checkpoint sink pos %d beyond stream length %d", cp.SinkPos, crashed.buf.Len())
	}
	p3, _ := newProber(t, seed, 3, 60)
	resumed := newBufCheckpointWriter()
	resumed.buf.Write(crashed.buf.Bytes()[:cp.SinkPos])
	resumedSink := NewWriteSink(resumed)
	resumedSink.SetCount(cp.Records)
	c3 := cfg(p3)
	c3.Resume = cp
	if err := TracerouteCampaign(p3, c3, resumedSink); err != nil {
		t.Fatal(err)
	}
	if _, err := resumed.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(clean.buf.Bytes(), resumed.buf.Bytes()) {
		t.Fatalf("resumed stream differs from uninterrupted run (%d vs %d bytes)",
			resumed.buf.Len(), clean.buf.Len())
	}
}

// TestCompletionRate: under the standard fault plan with retries and
// quarantine armed, traceroute completion stays near the paper's ~75%
// server-to-server reachability operating point.
func TestCompletionRate(t *testing.T) {
	const seed = 47
	p, platform := newProber(t, seed, 2, 60)
	plan := attachStandardPlan(t, p, platform, seed, 2)
	servers := SelectMesh(platform, 8, seed)
	var col Collector
	err := TracerouteCampaign(p, TracerouteCampaignConfig{
		Pairs:          UnorderedPairs(servers),
		Duration:       24 * time.Hour,
		Interval:       time.Hour,
		BothDirections: true,
		Workers:        4,
		Resilience: Resilience{
			Faults:          plan,
			Retry:           RetryPolicy{MaxAttempts: 3},
			QuarantineAfter: 3,
		},
	}, &col)
	if err != nil {
		t.Fatal(err)
	}
	complete := 0
	for _, tr := range col.Traceroutes {
		if tr.Complete {
			complete++
		}
	}
	rate := float64(complete) / float64(len(col.Traceroutes))
	t.Logf("traceroutes=%d complete=%d rate=%.3f", len(col.Traceroutes), complete, rate)
	if rate < 0.73 || rate > 0.77 {
		t.Errorf("completion rate %.3f outside [0.73, 0.77]", rate)
	}
}
