package campaign

import (
	"bytes"
	"io"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// TestTraceDoesNotPerturbRecords is the flight recorder's core contract:
// attaching a recorder (with metric snapshots enabled) must leave the
// encoded record stream byte-identical to an untraced run.
func TestTraceDoesNotPerturbRecords(t *testing.T) {
	_, platform := newProber(t, 51, 3, 60)
	servers := SelectMesh(platform, 5, 51)
	run := func(workers int, rec *flight.Recorder) []byte {
		var buf bytes.Buffer
		c, flush := binarySink(t, &buf)
		p, _ := newProber(t, 51, 3, 60)
		if err := LongTerm(p, LongTermConfig{
			Servers:       servers,
			Duration:      30 * time.Hour,
			Interval:      3 * time.Hour,
			ParisSwitchAt: 15 * time.Hour,
			Workers:       workers,
			Trace:         rec,
		}, c); err != nil {
			t.Fatal(err)
		}
		flush()
		return buf.Bytes()
	}

	for _, workers := range []int{1, 4} {
		plain := run(workers, nil)

		var traceBuf bytes.Buffer
		reg := obs.NewRegistry()
		rec := flight.New(&traceBuf, flight.Options{
			Tool:            "test",
			Registry:        reg,
			MetricsInterval: 24 * time.Hour,
		})
		traced := run(workers, rec)
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}

		if !bytes.Equal(plain, traced) {
			t.Fatalf("workers=%d: traced record stream differs from untraced (%d vs %d bytes)",
				workers, len(traced), len(plain))
		}

		tr, err := flight.Read(&traceBuf)
		if err != nil {
			t.Fatal(err)
		}
		rounds, workerSpans, campaigns := 0, 0, 0
		for _, r := range tr.Spans() {
			switch r.Ph {
			case flight.PhRound:
				rounds++
			case flight.PhWorker:
				workerSpans++
			case flight.PhCampaign:
				campaigns++
			}
		}
		if rounds != 10 {
			t.Errorf("workers=%d: got %d round spans, want 10", workers, rounds)
		}
		if workerSpans < rounds {
			t.Errorf("workers=%d: got %d worker spans, want >= %d", workers, workerSpans, rounds)
		}
		if campaigns != 1 {
			t.Errorf("workers=%d: got %d campaign spans, want 1", workers, campaigns)
		}
	}
}

// TestEngineTraceEvent verifies the pool-size announcement and that worker
// span task counts add up to the schedule across a round.
func TestEngineTraceEvent(t *testing.T) {
	_, platform := newProber(t, 52, 3, 60)
	servers := SelectMesh(platform, 4, 52)

	var buf bytes.Buffer
	rec := flight.New(&buf, flight.Options{Tool: "test"})
	p, _ := newProber(t, 52, 3, 60)
	if err := LongTerm(p, LongTermConfig{
		Servers:  servers,
		Duration: 3 * time.Hour,
		Interval: 3 * time.Hour,
		Workers:  4,
		Trace:    rec,
	}, Funcs{}); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := flight.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var poolSize int64
	var roundTasks, workerTasks int64
	for _, r := range tr.Records {
		switch {
		case r.K == flight.KEvent && r.Ph == flight.PhEngine:
			poolSize = r.N
		case r.K == flight.KSpan && r.Ph == flight.PhRound:
			roundTasks += r.N
		case r.K == flight.KSpan && r.Ph == flight.PhWorker:
			workerTasks += r.N
		}
	}
	if poolSize != 4 {
		t.Errorf("engine event pool size = %d, want 4", poolSize)
	}
	if roundTasks == 0 || workerTasks != roundTasks {
		t.Errorf("worker span tasks = %d, want %d (sum of round tasks)", workerTasks, roundTasks)
	}
}

// BenchmarkLongTermCampaignTraced is BenchmarkLongTermCampaign at 8
// workers with and without a live flight recorder (draining to
// io.Discard, snapshots on). The two variants differ only in the
// recorder, so their delta is the tracing overhead budgeted <5% in
// DESIGN.md.
func BenchmarkLongTermCampaignTraced(b *testing.B) {
	for _, traced := range []bool{false, true} {
		name := "trace=off"
		if traced {
			name = "trace=on"
		}
		b.Run(name, func(b *testing.B) {
			p, platform := newProber(b, 41, 10, 80)
			servers := SelectMesh(platform, 10, 41)
			reg := obs.NewRegistry()
			cfg := LongTermConfig{
				Servers:       servers,
				Duration:      5 * 24 * time.Hour,
				Interval:      3 * time.Hour,
				ParisSwitchAt: 60 * time.Hour,
				Workers:       8,
				Metrics:       reg,
			}
			if traced {
				cfg.Trace = flight.New(io.Discard, flight.Options{
					Tool:            "bench",
					Registry:        reg,
					MetricsInterval: 24 * time.Hour,
				})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := LongTerm(p, cfg, Funcs{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
