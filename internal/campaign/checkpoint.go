package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// ErrInjectedCrash is returned by a campaign whose CrashAt virtual time
// was reached: the run stops mid-campaign without flushing, simulating a
// hard process death for resume testing.
var ErrInjectedCrash = errors.New("campaign: injected crash")

// ErrShutdown is the graceful-stop sentinel: an Abort hook that returns it
// stops the campaign at the next round boundary without the error being
// treated as a sink failure. Commands map it to a clean exit — the
// dataset holds every completed round and can be flushed, analyzed, and
// resumed from a checkpoint like any interrupted run.
var ErrShutdown = errors.New("campaign: shutdown requested")

// SinkError wraps a dataset-sink write failure that aborted a campaign.
// Commands should detect it (errors.As) and exit with a distinct status:
// the measurements were fine, the dataset is incomplete.
type SinkError struct {
	Err error
}

func (e *SinkError) Error() string { return fmt.Sprintf("campaign: dataset sink failed: %v", e.Err) }
func (e *SinkError) Unwrap() error { return e.Err }

// CheckpointableWriter is a dataset writer that can make everything
// written so far durable and report a resume position: for a flat file
// the byte offset to truncate back to, for the sharded store the number
// of committed records. trace writers gain this via a small adapter in
// the CLI; store.Writer implements it directly.
type CheckpointableWriter interface {
	Checkpoint() (pos int64, err error)
}

// MetricCheckpoints counts campaign checkpoints written.
const MetricCheckpoints = "s2s_campaign_checkpoints_total"

// CheckpointVersion is the on-disk checkpoint format version.
const CheckpointVersion = 1

// Checkpoint is a campaign's durable resume point: where the virtual
// clock was, how much of the dataset is committed, and the runtime state
// (quarantine list, round cursor) that is not derivable from the seed.
// Everything else — topology, platform, fault plan — is regenerated
// deterministically from the identity fields, which Compatible checks.
type Checkpoint struct {
	Version    int    `json:"version"`
	Tool       string `json:"tool,omitempty"`
	Campaign   string `json:"campaign"`
	Seed       int64  `json:"seed"`
	TopoDigest string `json:"topo_digest,omitempty"`
	// Faults names the fault plan ("", "standard", "heavy") so a resume
	// cannot silently run under a different failure schedule.
	Faults     string `json:"faults,omitempty"`
	IntervalNS int64  `json:"interval_ns"`
	DurationNS int64  `json:"duration_ns"`
	// ResumeAtNS is the virtual time the resumed run starts at (the first
	// round NOT covered by this checkpoint).
	ResumeAtNS int64 `json:"resume_at_ns"`
	Rounds     int64 `json:"rounds"`
	// Records is how many records the campaign had delivered; SinkPos is
	// the sink's durable position (byte offset or committed-record count).
	Records int64 `json:"records"`
	SinkPos int64 `json:"sink_pos"`
	// Runtime carries the engine's pair-health state.
	Runtime *RuntimeState `json:"runtime,omitempty"`
}

// ResumeAt returns the virtual time the resumed run starts at.
func (c *Checkpoint) ResumeAt() time.Duration { return time.Duration(c.ResumeAtNS) }

// Compatible checks that a checkpoint belongs to the run being resumed:
// same tool, seed, topology, and fault plan. Any mismatch would splice
// records from two different universes into one dataset.
func (c *Checkpoint) Compatible(tool string, seed int64, topoDigest, faultsSpec string) error {
	if c.Version != CheckpointVersion {
		return fmt.Errorf("campaign: checkpoint version %d, want %d", c.Version, CheckpointVersion)
	}
	if c.Tool != "" && tool != "" && c.Tool != tool {
		return fmt.Errorf("campaign: checkpoint written by %q, resuming with %q", c.Tool, tool)
	}
	if c.Seed != seed {
		return fmt.Errorf("campaign: checkpoint seed %d, run seed %d", c.Seed, seed)
	}
	if c.TopoDigest != "" && topoDigest != "" && c.TopoDigest != topoDigest {
		return fmt.Errorf("campaign: checkpoint topology %s, run topology %s", c.TopoDigest, topoDigest)
	}
	if c.Faults != faultsSpec {
		return fmt.Errorf("campaign: checkpoint fault plan %q, run fault plan %q", c.Faults, faultsSpec)
	}
	return nil
}

// matches checks the loop parameters a resumed campaign must share with
// the interrupted one.
func (c *Checkpoint) matches(kind string, interval, duration time.Duration) error {
	if c.Campaign != kind {
		return fmt.Errorf("campaign: checkpoint is a %q campaign, not %q", c.Campaign, kind)
	}
	if time.Duration(c.IntervalNS) != interval {
		return fmt.Errorf("campaign: checkpoint interval %v, run interval %v", time.Duration(c.IntervalNS), interval)
	}
	if time.Duration(c.DurationNS) != duration {
		return fmt.Errorf("campaign: checkpoint duration %v, run duration %v", time.Duration(c.DurationNS), duration)
	}
	if c.ResumeAtNS < 0 || c.ResumeAtNS > c.DurationNS {
		return fmt.Errorf("campaign: checkpoint resume point %v outside campaign", time.Duration(c.ResumeAtNS))
	}
	return nil
}

// LoadCheckpoint reads a checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("campaign: checkpoint %s: %w", path, err)
	}
	if c.Version != CheckpointVersion {
		return nil, fmt.Errorf("campaign: checkpoint %s: version %d, want %d", path, c.Version, CheckpointVersion)
	}
	return &c, nil
}

// Checkpointer writes periodic campaign checkpoints. Every Interval of
// virtual time it asks the sink for a durable position and atomically
// replaces Path (write to a temp file, fsync, rename), so a crash at any
// instant leaves either the previous or the new checkpoint — never a torn
// one.
type Checkpointer struct {
	// Path of the checkpoint file; Interval is virtual time between
	// checkpoints.
	Path     string
	Interval time.Duration
	// Sink makes the dataset durable and reports the resume position.
	Sink CheckpointableWriter
	// Records reports how many records the campaign has delivered
	// (typically WriteSink.Count).
	Records func() int64
	// Identity of the run, echoed into the checkpoint for Compatible.
	Tool       string
	Seed       int64
	TopoDigest string
	Faults     string
	// Metrics and Trace observe checkpointing (optional).
	Metrics *obs.Registry
	Trace   *flight.Recorder

	counter *obs.Counter
}

// write produces one checkpoint with resume point resumeAt.
func (ck *Checkpointer) write(kind string, interval, duration, resumeAt time.Duration, rounds int64, e *Engine) error {
	pos, err := ck.Sink.Checkpoint()
	if err != nil {
		return fmt.Errorf("campaign: checkpoint sink: %w", err)
	}
	cp := Checkpoint{
		Version:    CheckpointVersion,
		Tool:       ck.Tool,
		Campaign:   kind,
		Seed:       ck.Seed,
		TopoDigest: ck.TopoDigest,
		Faults:     ck.Faults,
		IntervalNS: int64(interval),
		DurationNS: int64(duration),
		ResumeAtNS: int64(resumeAt),
		Rounds:     rounds,
		SinkPos:    pos,
		Runtime:    e.snapshotState(),
	}
	if ck.Records != nil {
		cp.Records = ck.Records()
	}
	data, err := json.MarshalIndent(&cp, "", "  ")
	if err != nil {
		return err
	}
	tmp := ck.Path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err = f.Write(append(data, '\n')); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, ck.Path); err != nil {
		os.Remove(tmp)
		return err
	}
	if ck.Metrics != nil && ck.counter == nil {
		ck.counter = ck.Metrics.Counter(MetricCheckpoints, "campaign checkpoints written")
	}
	ck.counter.Inc()
	ck.Trace.Event(flight.PhCheckpoint, resumeAt, flight.Attrs{N: cp.Records, M: pos})
	return nil
}

// runControl is the shared campaign round loop: every campaign type
// drives its schedule through this one implementation, which layers
// resume, periodic checkpoints, injected crashes, and sink-abort checks
// over the plain virtual-clock iteration.
type runControl struct {
	e        *Engine
	c        Consumer
	kind     string
	duration time.Duration
	interval time.Duration
	// schedule returns the round's task list for a virtual time; the
	// returned slice is only read.
	schedule func(at time.Duration) []measurement
	ckpt     *Checkpointer
	resume   *Checkpoint
	crashAt  time.Duration
	// abort is polled after every round; a non-nil error stops the
	// campaign with a SinkError (typically WriteSink.Err).
	abort func() error
	rec   *flight.Recorder
}

// run executes the loop and returns the number of rounds this invocation
// ran (not counting rounds covered by a resumed checkpoint).
func (rc *runControl) run() (int64, error) {
	startAt := time.Duration(0)
	rounds := int64(0)
	if rc.resume != nil {
		if err := rc.resume.matches(rc.kind, rc.interval, rc.duration); err != nil {
			return 0, err
		}
		startAt = rc.resume.ResumeAt()
		rc.e.restoreState(rc.resume.Runtime)
		rc.rec.Event(flight.PhResume, startAt, flight.Attrs{N: rc.resume.Rounds})
	}
	next := time.Duration(-1)
	if rc.ckpt != nil && rc.ckpt.Interval > 0 {
		next = startAt + rc.ckpt.Interval
	}
	for at := startAt; at < rc.duration; at += rc.interval {
		if rc.crashAt > 0 && at >= rc.crashAt {
			return rounds, ErrInjectedCrash
		}
		rc.e.RunRound(rc.schedule(at), at, rc.c)
		rounds++
		if rc.abort != nil {
			if err := rc.abort(); err != nil {
				if errors.Is(err, ErrShutdown) {
					return rounds, err
				}
				return rounds, &SinkError{Err: err}
			}
		}
		if next >= 0 && at+rc.interval >= next {
			total := rounds
			if rc.resume != nil {
				total += rc.resume.Rounds
			}
			if err := rc.ckpt.write(rc.kind, rc.interval, rc.duration, at+rc.interval, total, rc.e); err != nil {
				return rounds, err
			}
			next += rc.ckpt.Interval
		}
	}
	return rounds, nil
}
