package campaign

import (
	"testing"
	"time"

	"repro/internal/astopo"
	"repro/internal/bgp"
	"repro/internal/cdn"
	"repro/internal/congestion"
	"repro/internal/itopo"
	"repro/internal/probe"
	"repro/internal/simnet"
	"repro/internal/trace"
)

func newProber(t testing.TB, seed int64, days int, clusters int) (*probe.Prober, *cdn.Platform) {
	t.Helper()
	dur := time.Duration(days) * 24 * time.Hour
	topo, err := astopo.Generate(astopo.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	rnet, err := itopo.Build(topo, itopo.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := bgp.NewDynamics(topo, bgp.DefaultDynConfig(seed, dur))
	if err != nil {
		t.Fatal(err)
	}
	cong, err := congestion.NewModel(rnet, congestion.DefaultConfig(seed, dur))
	if err != nil {
		t.Fatal(err)
	}
	platform, err := cdn.Deploy(rnet, cdn.DefaultConfig(seed, clusters))
	if err != nil {
		t.Fatal(err)
	}
	return probe.New(simnet.New(rnet, dyn, cong, simnet.DefaultConfig(seed))), platform
}

func TestLongTermSchedule(t *testing.T) {
	p, platform := newProber(t, 1, 3, 60)
	servers := SelectMesh(platform, 6, 1)
	if len(servers) != 6 {
		t.Fatalf("mesh size = %d", len(servers))
	}
	var col Collector
	cfg := LongTermConfig{
		Servers:  servers,
		Duration: 24 * time.Hour,
		Interval: 3 * time.Hour,
	}
	if err := LongTerm(p, cfg, &col); err != nil {
		t.Fatal(err)
	}
	// 8 rounds × 30 directed pairs × 2 protocols.
	want := 8 * 6 * 5 * 2
	if len(col.Traceroutes) != want {
		t.Fatalf("traceroutes = %d, want %d", len(col.Traceroutes), want)
	}
	// Round timestamps are shared and multiples of the interval.
	for _, tr := range col.Traceroutes {
		if tr.At%(3*time.Hour) != 0 {
			t.Fatalf("timestamp %v not on a round boundary", tr.At)
		}
	}
	// Both protocols measured per pair per round.
	v4, v6 := 0, 0
	for _, tr := range col.Traceroutes {
		if tr.V6 {
			v6++
		} else {
			v4++
		}
	}
	if v4 != v6 {
		t.Errorf("v4=%d v6=%d, want equal", v4, v6)
	}
}

func TestLongTermParisSwitch(t *testing.T) {
	p, platform := newProber(t, 2, 3, 40)
	servers := SelectMesh(platform, 3, 2)
	var col Collector
	cfg := LongTermConfig{
		Servers:       servers,
		Duration:      12 * time.Hour,
		Interval:      3 * time.Hour,
		ParisSwitchAt: 6 * time.Hour,
	}
	if err := LongTerm(p, cfg, &col); err != nil {
		t.Fatal(err)
	}
	for _, tr := range col.Traceroutes {
		switch {
		case tr.V6 && tr.Paris:
			t.Fatal("v6 must remain classic throughout")
		case !tr.V6 && tr.At < 6*time.Hour && tr.Paris:
			t.Fatal("v4 must be classic before the switch")
		case !tr.V6 && tr.At >= 6*time.Hour && !tr.Paris:
			t.Fatal("v4 must be Paris after the switch")
		}
	}
}

func TestLongTermValidation(t *testing.T) {
	p, platform := newProber(t, 3, 3, 40)
	servers := SelectMesh(platform, 3, 3)
	var col Collector
	if err := LongTerm(p, LongTermConfig{Servers: servers[:1], Duration: time.Hour, Interval: time.Hour}, &col); err == nil {
		t.Error("single server should error")
	}
	if err := LongTerm(p, LongTermConfig{Servers: servers, Duration: 0, Interval: time.Hour}, &col); err == nil {
		t.Error("zero duration should error")
	}
	// Non-dual-stack server rejected.
	var v4only *cdn.Cluster
	for _, c := range platform.Clusters {
		if !c.DualStack() {
			v4only = c
			break
		}
	}
	if v4only != nil {
		bad := append(append([]*cdn.Cluster(nil), servers...), v4only)
		if err := LongTerm(p, LongTermConfig{Servers: bad, Duration: time.Hour, Interval: time.Hour}, &col); err == nil {
			t.Error("non-dual-stack server should error")
		}
	}
}

func TestPingMesh(t *testing.T) {
	p, platform := newProber(t, 4, 2, 50)
	servers := SelectMesh(platform, 5, 4)
	pairs := FullMeshPairs(servers)
	var col Collector
	cfg := PingMeshConfig{
		Pairs:    pairs,
		Duration: 2 * time.Hour,
		Interval: 15 * time.Minute,
	}
	if err := PingMesh(p, cfg, &col); err != nil {
		t.Fatal(err)
	}
	// 8 rounds × 20 pairs × 2 protocols (all mesh members dual-stack).
	want := 8 * 20 * 2
	if len(col.Pings) != want {
		t.Fatalf("pings = %d, want %d", len(col.Pings), want)
	}
	if err := PingMesh(p, PingMeshConfig{}, &col); err == nil {
		t.Error("empty pairs should error")
	}
}

func TestTracerouteCampaignBothDirections(t *testing.T) {
	p, platform := newProber(t, 5, 2, 50)
	servers := SelectMesh(platform, 4, 5)
	pairs := UnorderedPairs(servers)
	var col Collector
	cfg := TracerouteCampaignConfig{
		Pairs:          pairs,
		Duration:       time.Hour,
		Interval:       30 * time.Minute,
		BothDirections: true,
		Paris:          true,
		V6:             true,
	}
	if err := TracerouteCampaign(p, cfg, &col); err != nil {
		t.Fatal(err)
	}
	// 2 rounds × 6 unordered pairs × 2 directions × 2 protocols.
	want := 2 * 6 * 2 * 2
	if len(col.Traceroutes) != want {
		t.Fatalf("traceroutes = %d, want %d", len(col.Traceroutes), want)
	}
	// Every forward record has a same-round reverse record.
	type k struct {
		a, b int
		at   time.Duration
		v6   bool
	}
	seen := map[k]bool{}
	for _, tr := range col.Traceroutes {
		seen[k{tr.SrcID, tr.DstID, tr.At, tr.V6}] = true
	}
	for _, tr := range col.Traceroutes {
		if !seen[k{tr.DstID, tr.SrcID, tr.At, tr.V6}] {
			t.Fatalf("missing reverse measurement for %d→%d", tr.SrcID, tr.DstID)
		}
	}
}

func TestSelectMeshProperties(t *testing.T) {
	_, platform := newProber(t, 6, 2, 300)
	mesh := SelectMesh(platform, 40, 9)
	if len(mesh) != 40 {
		t.Fatalf("mesh = %d, want 40", len(mesh))
	}
	type site struct {
		as   int64
		city int
	}
	seen := map[site]bool{}
	for _, c := range mesh {
		if !c.DualStack() {
			t.Errorf("cluster %d in mesh is not dual-stack", c.ID)
		}
		k := site{int64(c.HostAS), c.City}
		if seen[k] {
			t.Errorf("duplicate site in mesh: %+v", k)
		}
		seen[k] = true
	}
	// Deterministic under the same seed.
	mesh2 := SelectMesh(platform, 40, 9)
	for i := range mesh {
		if mesh[i].ID != mesh2[i].ID {
			t.Fatal("SelectMesh not deterministic")
		}
	}
}

func TestColocatedPairs(t *testing.T) {
	_, platform := newProber(t, 7, 2, 200)
	pairs := ColocatedPairs(platform)
	if len(pairs) == 0 {
		t.Fatal("no colocated pairs on a 200-cluster platform")
	}
	for _, pr := range pairs {
		if pr[0].City != pr[1].City {
			t.Errorf("pair %d/%d not colocated", pr[0].ID, pr[1].ID)
		}
		if pr[0].ID == pr[1].ID {
			t.Error("self pair")
		}
	}
}

func TestConsumerAdapters(t *testing.T) {
	var got []string
	f := Funcs{
		Traceroute: func(tr *trace.Traceroute) { got = append(got, "tr") },
		Ping:       func(p *trace.Ping) { got = append(got, "pg") },
	}
	var col Collector
	m := Multi{f, &col}
	m.OnTraceroute(&trace.Traceroute{})
	m.OnPing(&trace.Ping{})
	if len(got) != 2 || got[0] != "tr" || got[1] != "pg" {
		t.Errorf("Funcs adapter: %v", got)
	}
	if len(col.Traceroutes) != 1 || len(col.Pings) != 1 {
		t.Error("Collector missed records via Multi")
	}
	// nil funcs drop silently
	Funcs{}.OnTraceroute(&trace.Traceroute{})
	Funcs{}.OnPing(&trace.Ping{})
}

// TestMultiFanOutOrder checks that Multi delivers every record to every
// consumer in declaration order, so a metrics tap ahead of a writer sees
// the record before it is persisted.
func TestMultiFanOutOrder(t *testing.T) {
	var order []int
	tap := func(id int) Funcs {
		return Funcs{
			Traceroute: func(*trace.Traceroute) { order = append(order, id) },
			Ping:       func(*trace.Ping) { order = append(order, -id) },
		}
	}
	var col Collector
	m := Multi{tap(1), tap(2), &col, tap(3)}
	m.OnTraceroute(&trace.Traceroute{})
	m.OnPing(&trace.Ping{})
	m.OnTraceroute(&trace.Traceroute{})
	want := []int{1, 2, 3, -1, -2, -3, 1, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("fan-out calls = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fan-out order = %v, want %v", order, want)
		}
	}
	if len(col.Traceroutes) != 2 || len(col.Pings) != 1 {
		t.Errorf("interleaved Collector got %d/%d records, want 2/1",
			len(col.Traceroutes), len(col.Pings))
	}
}

// TestParallelMatchesSequential asserts that the parallel long-term runner
// produces the exact record stream of the sequential one.
func TestParallelMatchesSequential(t *testing.T) {
	p, platform := newProber(t, 8, 2, 60)
	servers := SelectMesh(platform, 5, 8)
	cfg := LongTermConfig{
		Servers:  servers,
		Duration: 12 * time.Hour,
		Interval: 3 * time.Hour,
	}
	var seq, par Collector
	if err := LongTerm(p, cfg, &seq); err != nil {
		t.Fatal(err)
	}
	// A fresh prober so path caches don't leak ordering effects.
	p2, platform2 := newProber(t, 8, 2, 60)
	servers2 := SelectMesh(platform2, 5, 8)
	cfg.Servers = servers2
	cfg.Workers = 4
	if err := LongTerm(p2, cfg, &par); err != nil {
		t.Fatal(err)
	}
	if len(seq.Traceroutes) != len(par.Traceroutes) {
		t.Fatalf("record counts differ: %d vs %d", len(seq.Traceroutes), len(par.Traceroutes))
	}
	for i := range seq.Traceroutes {
		a, b := seq.Traceroutes[i], par.Traceroutes[i]
		if a.SrcID != b.SrcID || a.DstID != b.DstID || a.At != b.At ||
			a.V6 != b.V6 || a.RTT != b.RTT || a.Complete != b.Complete ||
			len(a.Hops) != len(b.Hops) {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, a, b)
		}
		for h := range a.Hops {
			if a.Hops[h] != b.Hops[h] {
				t.Fatalf("record %d hop %d differs", i, h)
			}
		}
	}
}

// TestParallelSingleWorkerFallback covers the sequential fast path.
func TestParallelSingleWorkerFallback(t *testing.T) {
	p, platform := newProber(t, 9, 2, 50)
	servers := SelectMesh(platform, 3, 9)
	cfg := LongTermConfig{Servers: servers, Duration: 3 * time.Hour, Interval: 3 * time.Hour, Workers: 1}
	var col Collector
	if err := LongTerm(p, cfg, &col); err != nil {
		t.Fatal(err)
	}
	want := 3 * 2 * 2 // pairs × protocols
	if len(col.Traceroutes) != want {
		t.Fatalf("records = %d, want %d", len(col.Traceroutes), want)
	}
}
