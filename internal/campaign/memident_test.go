package campaign

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/trace"
)

// TestPooledStreamMatchesNaive pins the memory overhaul's output
// contract on a larger world: a streaming run — WriteSink consumer, so
// the engine recycles every record through the trace pools — and a
// seed-style naive run — a retaining consumer, so recycling stays off
// and every record is a fresh allocation — must produce byte-identical
// datasets at every worker count. The naive runs also re-encode their
// records only after the campaign finishes, which fails loudly if pooled
// buffers were ever handed out again while still retained.
func TestPooledStreamMatchesNaive(t *testing.T) {
	_, platform := newProber(t, 46, 3, 300)
	servers := SelectMesh(platform, 8, 46)
	run := func(w int, c Consumer) {
		t.Helper()
		p, _ := newProber(t, 46, 3, 300)
		err := LongTerm(p, LongTermConfig{
			Servers:       servers,
			Duration:      24 * time.Hour,
			Interval:      3 * time.Hour,
			ParisSwitchAt: 15 * time.Hour, // classic and Paris probes both on the table
			Workers:       w,
		}, c)
		if err != nil {
			t.Fatal(err)
		}
	}

	var want []byte
	for _, w := range []int{1, 8} {
		// Pooled, streaming path.
		var streamed bytes.Buffer
		bw := trace.NewBinaryWriter(&streamed)
		sink := NewWriteSink(bw)
		if !streams(sink) {
			t.Fatal("WriteSink must enable record recycling")
		}
		run(w, sink)
		if err := sink.Err(); err != nil {
			t.Fatal(err)
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}

		// Naive path: retain every record in delivery order, encode after
		// the campaign completes.
		var recs []any
		naive := Funcs{
			Traceroute: func(tr *trace.Traceroute) { recs = append(recs, tr) },
			Ping:       func(p *trace.Ping) { recs = append(recs, p) },
		}
		if streams(naive) {
			t.Fatal("a retaining consumer must not enable recycling")
		}
		run(w, naive)
		var retained bytes.Buffer
		nw := trace.NewBinaryWriter(&retained)
		for _, rec := range recs {
			var err error
			switch v := rec.(type) {
			case *trace.Traceroute:
				err = nw.WriteTraceroute(v)
			case *trace.Ping:
				err = nw.WritePing(v)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := nw.Flush(); err != nil {
			t.Fatal(err)
		}

		if streamed.Len() == 0 {
			t.Fatal("empty record stream")
		}
		if !bytes.Equal(streamed.Bytes(), retained.Bytes()) {
			t.Fatalf("workers=%d: pooled stream (%d bytes) differs from naive run (%d bytes)",
				w, streamed.Len(), retained.Len())
		}
		if want == nil {
			want = streamed.Bytes()
		} else if !bytes.Equal(want, streamed.Bytes()) {
			t.Fatalf("workers=%d: stream differs from workers=1 stream", w)
		}
	}
}
