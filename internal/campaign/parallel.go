package campaign

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/cdn"
	"repro/internal/probe"
	"repro/internal/trace"
)

// Workers in campaign configs selects parallel measurement execution.
// Records within each round are produced concurrently but delivered to the
// consumer in the same deterministic order as the sequential runner, so
// datasets are bit-identical regardless of worker count (measurements are
// pure functions of their coordinates; see simnet).

// task is one measurement slot within a round.
type task struct {
	src, dst *cdn.Cluster
	v6       bool
	paris    bool
}

// runRound executes a round's tasks across workers and delivers the
// resulting traceroutes in task order.
func runRound(p *probe.Prober, tasks []task, at time.Duration, workers int, c Consumer) {
	if workers <= 1 || len(tasks) < 2 {
		for _, tk := range tasks {
			c.OnTraceroute(p.Traceroute(tk.src, tk.dst, tk.v6, tk.paris, at))
		}
		return
	}
	if workers > runtime.NumCPU() {
		workers = runtime.NumCPU()
	}
	out := make([]*trace.Traceroute, len(tasks))
	var next int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := int(next)
				next++
				mu.Unlock()
				if i >= len(tasks) {
					return
				}
				tk := tasks[i]
				out[i] = p.Traceroute(tk.src, tk.dst, tk.v6, tk.paris, at)
			}
		}()
	}
	wg.Wait()
	for _, tr := range out {
		c.OnTraceroute(tr)
	}
}

// LongTermParallel runs the long-term campaign with the given worker
// count, producing exactly the records LongTerm would, in the same order.
func LongTermParallel(p *probe.Prober, cfg LongTermConfig, workers int, c Consumer) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	for at := time.Duration(0); at < cfg.Duration; at += cfg.Interval {
		paris4 := at >= cfg.ParisSwitchAt
		tasks := make([]task, 0, len(cfg.Servers)*(len(cfg.Servers)-1)*2)
		for _, src := range cfg.Servers {
			for _, dst := range cfg.Servers {
				if src.ID == dst.ID {
					continue
				}
				tasks = append(tasks,
					task{src, dst, false, paris4},
					task{src, dst, true, false},
				)
			}
		}
		runRound(p, tasks, at, workers, c)
	}
	return nil
}
