package campaign

import (
	"repro/internal/probe"
)

// LongTermParallel runs the long-term campaign with the given worker
// count, producing exactly the records LongTerm would, in the same order.
// It is a convenience wrapper over LongTerm with cfg.Workers overridden;
// all campaign types share the Engine worker pool implementation.
func LongTermParallel(p *probe.Prober, cfg LongTermConfig, workers int, c Consumer) error {
	cfg.Workers = workers
	return LongTerm(p, cfg, c)
}
