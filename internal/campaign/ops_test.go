package campaign

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/alert"
	"repro/internal/obs/flight"
	"repro/internal/obs/ops"
)

// TestOpsDoesNotPerturbRecords extends the flight recorder's
// observation-only contract to the whole live-telemetry stack: a campaign
// run with an ops HTTP server attached, an alert engine evaluating every
// boundary, and a client streaming /flight/tail must produce a dataset
// byte-identical to a bare run — at one worker and under contention.
func TestOpsDoesNotPerturbRecords(t *testing.T) {
	_, platform := newProber(t, 51, 3, 60)
	servers := SelectMesh(platform, 5, 51)
	run := func(workers int, rec *flight.Recorder) []byte {
		var buf bytes.Buffer
		c, flush := binarySink(t, &buf)
		p, _ := newProber(t, 51, 3, 60)
		if err := LongTerm(p, LongTermConfig{
			Servers:       servers,
			Duration:      30 * time.Hour,
			Interval:      3 * time.Hour,
			ParisSwitchAt: 15 * time.Hour,
			Workers:       workers,
			Trace:         rec,
		}, c); err != nil {
			t.Fatal(err)
		}
		flush()
		return buf.Bytes()
	}

	for _, workers := range []int{1, 8} {
		plain := run(workers, nil)

		reg := obs.NewRegistry()
		var traceBuf bytes.Buffer
		rec := flight.New(&traceBuf, flight.Options{
			Tool:            "test",
			Registry:        reg,
			MetricsInterval: 24 * time.Hour,
		})
		srv, err := ops.Start("127.0.0.1:0", ops.Options{Tool: "test", Registry: reg, Recorder: rec})
		if err != nil {
			t.Fatal(err)
		}
		alert.New(alert.Options{Registry: reg, Health: srv.Health()}).Attach(rec)

		// A live client tails the flight stream for the whole run; the
		// handler ends when rec.Close() closes the subscription.
		tailDone := make(chan int64, 1)
		tailResp, err := http.Get("http://" + srv.Addr() + "/flight/tail")
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			n, _ := io.Copy(io.Discard, tailResp.Body)
			tailResp.Body.Close()
			tailDone <- n
		}()

		traced := run(workers, rec)

		for _, path := range []string{"/metrics", "/healthz", "/runz"} {
			resp, err := http.Get("http://" + srv.Addr() + path)
			if err != nil {
				t.Fatalf("GET %s: %v", path, err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK && path != "/healthz" {
				t.Fatalf("GET %s: status %d", path, resp.StatusCode)
			}
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
		select {
		case n := <-tailDone:
			if n == 0 {
				t.Errorf("workers=%d: /flight/tail streamed no bytes", workers)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("workers=%d: /flight/tail did not terminate after recorder close", workers)
		}
		srv.Close()

		if !bytes.Equal(plain, traced) {
			t.Fatalf("workers=%d: record stream with ops attached differs from bare run (%d vs %d bytes)",
				workers, len(traced), len(plain))
		}
		if !strings.Contains(traceBuf.String(), `"tool":"test"`) {
			t.Errorf("workers=%d: flight record missing meta line", workers)
		}
	}
}
