package campaign

import (
	"net/netip"
	"sort"
	"time"

	"repro/internal/cdn"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/trace"
)

// Default retry backoff schedule: the first retry waits DefaultBackoff of
// virtual time, each later one doubles, capped at DefaultMaxBackoff.
const (
	DefaultBackoff    = 30 * time.Second
	DefaultMaxBackoff = 4 * time.Minute
	// DefaultReprobeEvery is the re-probe cadence for quarantined pairs,
	// in rounds.
	DefaultReprobeEvery = 8
)

// RetryPolicy governs per-measurement retries. Retries happen in virtual
// time: attempt k executes at the round timestamp plus the cumulative
// backoff, so a retried record is a pure function of its coordinates and
// the stream stays deterministic at any worker count.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget per measurement (1 or 0 =
	// no retries).
	MaxAttempts int
	// Backoff is the virtual-time wait before the first retry (default
	// DefaultBackoff); it doubles per attempt, capped at MaxBackoff
	// (default DefaultMaxBackoff).
	Backoff    time.Duration
	MaxBackoff time.Duration
}

// Resilience configures fault-aware campaign execution. The zero value
// disables everything: no retries, no quarantine, no watchdog — the
// engine behaves exactly as before.
type Resilience struct {
	// Faults is the fault schedule the runtime consults for agent crashes
	// (the same plan should be attached to the prober and simnet).
	Faults *faults.Plan
	// Retry is the per-measurement retry budget.
	Retry RetryPolicy
	// QuarantineAfter quarantines a pair after this many consecutive
	// failed rounds (0 = no quarantine). Quarantined pairs are skipped
	// — their failures stop burning probes — and re-probed every
	// ReprobeEvery rounds; a successful re-probe releases them.
	QuarantineAfter int
	// ReprobeEvery is the quarantine re-probe cadence in rounds (default
	// DefaultReprobeEvery).
	ReprobeEvery int
	// Watchdog is a wall-clock budget per round (0 = off). If a round is
	// still incomplete when it expires, the round is abandoned: finished
	// tasks deliver normally, unfinished ones are booked as degraded
	// failure records, and the engine moves on instead of hanging.
	// A fired watchdog is the one place determinism is deliberately
	// traded for liveness: which tasks were finished depends on wall
	// time. It needs at least 2 workers (a single-worker engine executes
	// inline and has nobody to watch it).
	Watchdog time.Duration
}

// Additional engine metric families (see also engine.go).
const (
	MetricRetriesAttempted = "s2s_campaign_retries_attempted_total"
	MetricRetriesSucceeded = "s2s_campaign_retries_succeeded_total"
	MetricQuarantinedPairs = "s2s_campaign_quarantined_pairs"
	MetricQuarantineSkips  = "s2s_campaign_quarantine_skips_total"
	MetricQuarantineAdds   = "s2s_campaign_quarantine_adds_total"
	MetricDegradedRounds   = "s2s_campaign_degraded_rounds_total"
	MetricAgentDownTasks   = "s2s_campaign_agent_down_tasks_total"
	MetricAbandonedTasks   = "s2s_campaign_abandoned_tasks_total"
)

// pairHealth tracks one pair's consecutive-failure streak and quarantine
// state. Pairs with no state (the common case) carry no entry.
type pairHealth struct {
	streak      int
	quarantined bool
	since       int64 // round index of quarantine entry / last re-probe
}

// SetResilience configures fault-aware execution. Call before the first
// RunRound (and before Instrument if metrics should see the quarantine
// gauge).
func (e *Engine) SetResilience(res Resilience) {
	if res.Retry.MaxAttempts > 1 {
		if res.Retry.Backoff <= 0 {
			res.Retry.Backoff = DefaultBackoff
		}
		if res.Retry.MaxBackoff <= 0 {
			res.Retry.MaxBackoff = DefaultMaxBackoff
		}
	}
	if res.QuarantineAfter > 0 && res.ReprobeEvery <= 0 {
		res.ReprobeEvery = DefaultReprobeEvery
	}
	if res.Watchdog > 0 && e.workers <= 1 {
		// A single-worker engine executes inline; nobody is free to watch
		// it, and the sequential reference must stay untouched anyway.
		res.Watchdog = 0
	}
	e.res = res
	if e.health == nil {
		e.health = make(map[trace.PairKey]*pairHealth)
	}
}

// ok reports whether the measurement succeeded: a ping that came back, or
// a traceroute that reached its destination.
func (r result) ok() bool {
	if r.pg != nil {
		return !r.pg.Lost
	}
	return r.tr != nil && r.tr.Complete
}

// taskKey is the health-map key for a measurement's pair.
func taskKey(tk measurement) trace.PairKey {
	return trace.PairKey{SrcID: tk.src.ID, DstID: tk.dst.ID, V6: tk.v6}
}

func addrOf(c *cdn.Cluster, v6 bool) netip.Addr {
	if v6 {
		return c.Server6
	}
	return c.Server4
}

// failedResult synthesizes the record of a measurement that never ran — a
// crashed agent or a watchdog-abandoned task: a lost ping or an empty
// traceroute, stamped with the coordinates the real measurement would
// have had (the same shape the prober emits for a fully dead probe).
func failedResult(tk measurement, at time.Duration) result {
	if tk.ping {
		pg := trace.NewPooledPing()
		pg.SrcID, pg.DstID = tk.src.ID, tk.dst.ID
		pg.Src, pg.Dst = addrOf(tk.src, tk.v6), addrOf(tk.dst, tk.v6)
		pg.V6, pg.At, pg.Lost = tk.v6, at, true
		return result{pg: pg}
	}
	tr := trace.NewPooledTraceroute()
	tr.SrcID, tr.DstID = tk.src.ID, tk.dst.ID
	tr.Src, tr.Dst = addrOf(tk.src, tk.v6), addrOf(tk.dst, tk.v6)
	tr.V6, tr.Paris, tr.At = tk.v6, tk.paris, at
	return result{tr: tr}
}

// recycleResult hands a delivered (or discarded) result's record back to
// the trace pool.
func recycleResult(r result) {
	trace.RecyclePing(r.pg)
	trace.RecycleTraceroute(r.tr)
}

// attempt executes one measurement attempt at virtual time at.
func (e *Engine) attempt(tk measurement, at time.Duration) result {
	if e.testExec != nil {
		if res, ok := e.testExec(tk, at); ok {
			return res
		}
	}
	if tk.ping {
		return result{pg: e.p.Ping(tk.src, tk.dst, tk.v6, at)}
	}
	return result{tr: e.p.Traceroute(tk.src, tk.dst, tk.v6, tk.paris, at)}
}

// exec runs a measurement under the resilience policy: an agent-down
// check, then the attempt, then retries with capped exponential backoff
// in virtual time. The record kept is the last attempt's, so a recovered
// measurement carries its retry timestamp — as it would on a real
// platform.
func (e *Engine) exec(tk measurement, at time.Duration) result {
	if e.res.Faults != nil && e.res.Faults.AgentDown(tk.src.ID, at) {
		e.agentDownRound.Add(1)
		e.o.agentDown.Inc()
		return failedResult(tk, at)
	}
	res := e.attempt(tk, at)
	if e.res.Retry.MaxAttempts <= 1 || res.ok() {
		return res
	}
	backoff := e.res.Retry.Backoff
	off := time.Duration(0)
	for a := 2; a <= e.res.Retry.MaxAttempts; a++ {
		off += backoff
		if backoff < e.res.Retry.MaxBackoff {
			backoff *= 2
			if backoff > e.res.Retry.MaxBackoff {
				backoff = e.res.Retry.MaxBackoff
			}
		}
		e.o.retries.Inc()
		next := e.attempt(tk, at+off)
		if e.testExec == nil {
			// The failed attempt's record is discarded in favor of the
			// retry's; hand it back to the pool. Test interceptors may
			// return shared records, so only real prober output recycles.
			recycleResult(res)
		}
		res = next
		if res.ok() {
			e.o.retriesOK.Inc()
			break
		}
	}
	return res
}

// filterTasks drops quarantined pairs from the round's schedule, except
// on their re-probe cadence. The input slice is never mutated; the
// filtered schedule lives in a runtime-owned buffer.
func (e *Engine) filterTasks(tasks []measurement) []measurement {
	if e.res.QuarantineAfter <= 0 || e.quarCount == 0 {
		return tasks
	}
	out := e.filterBuf[:0]
	for _, tk := range tasks {
		if h := e.health[taskKey(tk)]; h != nil && h.quarantined {
			if (e.roundIdx-h.since)%int64(e.res.ReprobeEvery) != 0 {
				e.o.skips.Inc()
				continue
			}
		}
		out = append(out, tk)
	}
	e.filterBuf = out
	return out
}

// book updates the pair's health from a delivered result: success clears
// the streak and releases a quarantine; QuarantineAfter consecutive
// failed rounds put the pair on the quarantine list.
func (e *Engine) book(tk measurement, res result, at time.Duration) {
	if e.res.QuarantineAfter <= 0 {
		return
	}
	k := taskKey(tk)
	h := e.health[k]
	if res.ok() {
		if h == nil {
			return
		}
		if h.quarantined {
			e.quarCount--
			e.o.quarGauge.Set(float64(e.quarCount))
			e.rec.Event(flight.PhQuarantine, at, flight.Attrs{N: int64(tk.src.ID), M: int64(tk.dst.ID), S: "release"})
		}
		delete(e.health, k)
		return
	}
	if h == nil {
		h = &pairHealth{}
		e.health[k] = h
	}
	h.streak++
	if h.quarantined {
		// Failed re-probe: restart the cadence from this round.
		h.since = e.roundIdx
		return
	}
	if h.streak >= e.res.QuarantineAfter {
		h.quarantined = true
		h.since = e.roundIdx
		e.quarCount++
		e.o.quarAdds.Inc()
		e.o.quarGauge.Set(float64(e.quarCount))
		e.rec.Event(flight.PhQuarantine, at, flight.Attrs{N: int64(tk.src.ID), M: int64(tk.dst.ID), S: "add"})
	}
}

// RuntimeState is the non-seed-derivable runtime state a checkpoint
// carries: the round cursor and every pair's health entry.
type RuntimeState struct {
	Rounds int64       `json:"rounds"`
	Pairs  []PairState `json:"pairs,omitempty"`
}

// PairState is one pair's health entry in a checkpoint.
type PairState struct {
	Src         int   `json:"src"`
	Dst         int   `json:"dst"`
	V6          bool  `json:"v6,omitempty"`
	Streak      int   `json:"streak"`
	Quarantined bool  `json:"q,omitempty"`
	Since       int64 `json:"since,omitempty"`
}

// snapshotState captures the engine's runtime state for a checkpoint,
// with pairs sorted so the encoding is deterministic.
func (e *Engine) snapshotState() *RuntimeState {
	st := &RuntimeState{Rounds: e.roundIdx}
	for k, h := range e.health {
		st.Pairs = append(st.Pairs, PairState{
			Src: k.SrcID, Dst: k.DstID, V6: k.V6,
			Streak: h.streak, Quarantined: h.quarantined, Since: h.since,
		})
	}
	sort.Slice(st.Pairs, func(i, j int) bool {
		a, b := st.Pairs[i], st.Pairs[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		return !a.V6 && b.V6
	})
	return st
}

// restoreState rebuilds the engine's runtime state from a checkpoint.
func (e *Engine) restoreState(st *RuntimeState) {
	if st == nil {
		return
	}
	e.roundIdx = st.Rounds
	e.health = make(map[trace.PairKey]*pairHealth, len(st.Pairs))
	e.quarCount = 0
	for _, p := range st.Pairs {
		h := &pairHealth{streak: p.Streak, quarantined: p.Quarantined, since: p.Since}
		e.health[trace.PairKey{SrcID: p.Src, DstID: p.Dst, V6: p.V6}] = h
		if h.quarantined {
			e.quarCount++
		}
	}
	e.o.quarGauge.Set(float64(e.quarCount))
}

// instrumentResilience registers the runtime's counters (called from
// Instrument).
func (e *Engine) instrumentResilience(reg *obs.Registry) {
	e.o.retries = reg.Counter(MetricRetriesAttempted, "measurement retry attempts issued")
	e.o.retriesOK = reg.Counter(MetricRetriesSucceeded, "measurement retries that recovered a failed measurement")
	e.o.skips = reg.Counter(MetricQuarantineSkips, "scheduled measurements skipped because their pair was quarantined")
	e.o.quarAdds = reg.Counter(MetricQuarantineAdds, "pairs placed on the quarantine list")
	e.o.quarGauge = reg.Gauge(MetricQuarantinedPairs, "pairs currently quarantined")
	e.o.degraded = reg.Counter(MetricDegradedRounds, "rounds that booked degraded (agent-down or abandoned) results")
	e.o.agentDown = reg.Counter(MetricAgentDownTasks, "tasks booked as failed because the source agent was crashed")
	e.o.abandoned = reg.Counter(MetricAbandonedTasks, "tasks abandoned by the round watchdog")
}
