package campaign

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/astopo"
	"repro/internal/core/aspath"
	"repro/internal/ipam"
	"repro/internal/itopo"
	"repro/internal/trace"
)

// analysisMapper rebuilds the seed's BGP view the way s2sgen -analyze does,
// so the routing operator sees the same IP-to-AS table the campaign's
// network announces.
func analysisMapper(t *testing.T, seed int64) *aspath.Mapper {
	t.Helper()
	topo, err := astopo.Generate(astopo.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	rnet, err := itopo.Build(topo, itopo.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	table := ipam.NewTable()
	for _, e := range rnet.BGPEntries() {
		if err := table.Insert(e.Prefix, e.Origin); err != nil {
			t.Fatal(err)
		}
	}
	return aspath.NewMapper(table)
}

// TestAnalysisStageObservesOnly pins the tentpole contracts end to end on
// a real campaign: attaching the streaming-analysis stage (fanned out next
// to a streaming dataset sink, so record pooling stays on) leaves the
// dataset byte-identical, and the finding stream is identical at one
// worker and under contention.
func TestAnalysisStageObservesOnly(t *testing.T) {
	_, platform := newProber(t, 51, 3, 60)
	servers := SelectMesh(platform, 5, 51)
	mapper := analysisMapper(t, 51)

	run := func(workers int, stage *analysis.Stage) []byte {
		var buf bytes.Buffer
		w := trace.NewBinaryWriter(&buf)
		sink := NewWriteSink(w)
		var c Consumer = sink
		if stage != nil {
			c = Multi{sink, stage}
		}
		p, _ := newProber(t, 51, 3, 60)
		if err := LongTerm(p, LongTermConfig{
			Servers:       servers,
			Duration:      54 * time.Hour,
			Interval:      3 * time.Hour,
			ParisSwitchAt: 27 * time.Hour,
			Workers:       workers,
		}, c); err != nil {
			t.Fatal(err)
		}
		if stage != nil {
			stage.Finish()
		}
		if err := sink.Err(); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	var baseline []analysis.Finding
	var baselineBytes []byte
	for _, workers := range []int{1, 8} {
		plain := run(workers, nil)

		var got []analysis.Finding
		stage := analysis.NewStage(analysis.Config{
			Mapper:   mapper,
			Interval: 3 * time.Hour,
			Sink:     func(f analysis.Finding) { got = append(got, f) },
		}, nil, nil)
		instrumented := run(workers, stage)

		if !bytes.Equal(plain, instrumented) {
			t.Fatalf("workers=%d: record stream with analysis attached differs from bare run (%d vs %d bytes)",
				workers, len(instrumented), len(plain))
		}
		if len(got) == 0 {
			t.Fatalf("workers=%d: campaign produced no findings; the equivalence check is vacuous", workers)
		}
		if baseline == nil {
			baseline, baselineBytes = got, plain
			continue
		}
		if err := analysis.DiffStreams(baseline, got); err != nil {
			t.Errorf("workers=8 finding stream diverges from workers=1: %v", err)
		}
		if !bytes.Equal(baselineBytes, plain) {
			t.Error("workers=8 record stream diverges from workers=1 (engine determinism broken)")
		}
	}
}
