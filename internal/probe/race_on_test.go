//go:build race

package probe

// The race detector makes sync.Pool randomly drop Puts, so pooled hot
// paths cannot be allocation-free under -race.
const raceEnabled = true
