package probe

import (
	"strings"
	"testing"
	"time"

	"repro/internal/astopo"
	"repro/internal/bgp"
	"repro/internal/cdn"
	"repro/internal/congestion"
	"repro/internal/itopo"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// fixture assembles a full virtual network with a deployed platform.
type fixture struct {
	net      *itopo.Network
	dyn      *bgp.Dynamics
	cong     *congestion.Model
	sim      *simnet.Net
	platform *cdn.Platform
	prober   *Prober
}

func newFixture(t *testing.T, seed int64, days int, clusters int) *fixture {
	t.Helper()
	dur := time.Duration(days) * 24 * time.Hour
	topo, err := astopo.Generate(astopo.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	rnet, err := itopo.Build(topo, itopo.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := bgp.NewDynamics(topo, bgp.DefaultDynConfig(seed, dur))
	if err != nil {
		t.Fatal(err)
	}
	cong, err := congestion.NewModel(rnet, congestion.DefaultConfig(seed, dur))
	if err != nil {
		t.Fatal(err)
	}
	platform, err := cdn.Deploy(rnet, cdn.DefaultConfig(seed, clusters))
	if err != nil {
		t.Fatal(err)
	}
	sim := simnet.New(rnet, dyn, cong, simnet.DefaultConfig(seed))
	return &fixture{
		net: rnet, dyn: dyn, cong: cong, sim: sim,
		platform: platform, prober: New(sim),
	}
}

func (f *fixture) pair(t *testing.T) (*cdn.Cluster, *cdn.Cluster) {
	t.Helper()
	ds := f.platform.DualStackClusters()
	for i := 0; i < len(ds); i++ {
		for j := i + 1; j < len(ds); j++ {
			if ds[i].HostAS != ds[j].HostAS {
				return ds[i], ds[j]
			}
		}
	}
	t.Fatal("no dual-stack cluster pair in different ASes")
	return nil, nil
}

func TestPingBasics(t *testing.T) {
	f := newFixture(t, 1, 7, 60)
	src, dst := f.pair(t)
	ok := 0
	for i := 0; i < 20; i++ {
		at := time.Duration(i) * time.Hour
		p := f.prober.Ping(src, dst, false, at)
		if p.SrcID != src.ID || p.DstID != dst.ID || p.At != at {
			t.Fatalf("record metadata wrong: %+v", p)
		}
		if p.Lost {
			continue
		}
		ok++
		if p.RTT <= 0 || p.RTT > 2*time.Second {
			t.Errorf("implausible RTT %v", p.RTT)
		}
	}
	if ok == 0 {
		t.Fatal("all pings lost")
	}
}

func TestPingDeterministic(t *testing.T) {
	f := newFixture(t, 2, 7, 40)
	src, dst := f.pair(t)
	a := f.prober.Ping(src, dst, false, 5*time.Hour)
	b := f.prober.Ping(src, dst, false, 5*time.Hour)
	if *a != *b {
		t.Errorf("same coordinates produced different pings:\n%+v\n%+v", a, b)
	}
	c := f.prober.Ping(src, dst, false, 5*time.Hour+time.Minute)
	if !c.Lost && !a.Lost && c.RTT == a.RTT {
		t.Error("different times should see different noise")
	}
}

func TestPingV6DiffersFromV4(t *testing.T) {
	f := newFixture(t, 3, 7, 60)
	src, dst := f.pair(t)
	p4 := f.prober.Ping(src, dst, false, time.Hour)
	p6 := f.prober.Ping(src, dst, true, time.Hour)
	if p4.Lost || p6.Lost {
		t.Skip("loss on sampled pair")
	}
	if p4.Src == p6.Src {
		t.Error("v4 and v6 pings must use different source addresses")
	}
}

func TestTracerouteComplete(t *testing.T) {
	f := newFixture(t, 4, 7, 60)
	f.prober.DstFailProb = 0 // isolate path mechanics
	src, dst := f.pair(t)
	tr := f.prober.Traceroute(src, dst, false, true, 2*time.Hour)
	if !tr.Complete {
		t.Fatalf("expected complete traceroute, got %+v", tr)
	}
	if len(tr.Hops) < 2 {
		t.Fatalf("too few hops: %d", len(tr.Hops))
	}
	last := tr.Hops[len(tr.Hops)-1]
	if last.Addr != dst.Server4 {
		t.Errorf("final hop %v, want destination %v", last.Addr, dst.Server4)
	}
	if tr.RTT != last.RTT {
		t.Errorf("record RTT %v != final hop RTT %v", tr.RTT, last.RTT)
	}
	// Every responsive hop address is a known interface or the server.
	for i, h := range tr.Hops[:len(tr.Hops)-1] {
		if !h.Responsive() {
			continue
		}
		if _, ok := f.net.IfaceOwner(h.Addr); !ok {
			t.Errorf("hop %d addr %v unknown to the network", i, h.Addr)
		}
	}
}

func TestTracerouteHopRTTsIncreaseWithoutNoise(t *testing.T) {
	f := newFixture(t, 5, 7, 60)
	cfg := simnet.DefaultConfig(5)
	cfg.HopJitter = 0
	cfg.SpikeProb = 0
	f.sim = simnet.New(f.net, f.dyn, nil, cfg) // no congestion either
	f.prober = New(f.sim)
	f.prober.DstFailProb = 0
	src, dst := f.pair(t)
	tr := f.prober.Traceroute(src, dst, false, true, 3*time.Hour)
	if !tr.Complete {
		t.Skip("pair unreachable")
	}
	var prev time.Duration
	for i, h := range tr.Hops {
		if !h.Responsive() {
			continue
		}
		if h.RTT < prev {
			t.Errorf("hop %d RTT %v < previous %v without noise", i, h.RTT, prev)
		}
		prev = h.RTT
	}
}

func TestTracerouteIncompleteFraction(t *testing.T) {
	f := newFixture(t, 6, 7, 80)
	src0 := f.platform.Clusters
	total, incomplete := 0, 0
	for i := 0; i < len(src0) && total < 400; i++ {
		for j := 0; j < len(src0) && total < 400; j++ {
			if i == j {
				continue
			}
			tr := f.prober.Traceroute(src0[i], src0[j], false, true, time.Duration(total)*time.Minute)
			total++
			if !tr.Complete {
				incomplete++
			}
		}
	}
	frac := float64(incomplete) / float64(total)
	// DstFailProb 0.17 plus occasional unreachability: expect ~15-30%.
	if frac < 0.08 || frac > 0.40 {
		t.Errorf("incomplete fraction = %.2f, want ~0.17-0.25", frac)
	}
}

func TestTracerouteUnresponsiveHopsAppear(t *testing.T) {
	f := newFixture(t, 7, 7, 80)
	f.prober.DstFailProb = 0
	cs := f.platform.Clusters
	withMissing, total := 0, 0
	for i := 0; i < len(cs) && total < 300; i += 2 {
		for j := 1; j < len(cs) && total < 300; j += 3 {
			if cs[i] == cs[j] {
				continue
			}
			tr := f.prober.Traceroute(cs[i], cs[j], false, true, time.Hour)
			if !tr.Complete {
				continue
			}
			total++
			for _, h := range tr.Hops {
				if !h.Responsive() {
					withMissing++
					break
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no complete traceroutes")
	}
	frac := float64(withMissing) / float64(total)
	// Paper Table 1: 28% (v4). Generous band for topology variation.
	if frac < 0.08 || frac > 0.45 {
		t.Errorf("traceroutes with unresponsive hops = %.2f, want ~0.25", frac)
	}
}

func TestParisStableClassicVaries(t *testing.T) {
	f := newFixture(t, 8, 7, 80)
	f.prober.DstFailProb = 0
	f.prober.ArtifactProb = 0
	cs := f.platform.Clusters

	parisStable := true
	classicVaried := false
	for i := 0; i < len(cs)-1 && !classicVaried; i++ {
		src, dst := cs[i], cs[i+1]
		if src.HostAS == dst.HostAS {
			continue
		}
		var parisPath string
		for k := 0; k < 6; k++ {
			at := time.Duration(k) * 10 * time.Minute // same epoch, same congestion-free paths
			p := f.prober.Traceroute(src, dst, false, true, at)
			c := f.prober.Traceroute(src, dst, false, false, at)
			if !p.Complete || !c.Complete {
				continue
			}
			ps := hopAddrs(p)
			if parisPath == "" {
				parisPath = ps
			} else if !compatiblePaths(ps, parisPath) {
				parisStable = false
			}
			if cs := hopAddrs(c); len(c.Hops) > 0 && !compatiblePaths(cs, ps) {
				classicVaried = true
			}
		}
		parisPath = ""
	}
	if !parisStable {
		t.Error("Paris traceroute path changed within a routing epoch")
	}
	if !classicVaried {
		t.Error("classic traceroute never diverged from Paris; ECMP artifacts missing")
	}
}

func TestTracerouteUnreachableV6(t *testing.T) {
	f := newFixture(t, 9, 7, 120)
	// Find a v4-only cluster.
	var v4only, ds *cdn.Cluster
	for _, c := range f.platform.Clusters {
		if !c.DualStack() && v4only == nil {
			v4only = c
		}
		if c.DualStack() && ds == nil {
			ds = c
		}
	}
	if v4only == nil || ds == nil {
		t.Skip("no v4-only cluster deployed")
	}
	tr := f.prober.Traceroute(ds, v4only, true, true, time.Hour)
	if tr.Complete || len(tr.Hops) != 0 {
		t.Errorf("v6 traceroute to v4-only host should be empty, got %+v", tr)
	}
	p := f.prober.Ping(ds, v4only, true, time.Hour)
	if !p.Lost {
		t.Error("v6 ping to v4-only host should be lost")
	}
}

func TestCongestionRaisesRTTAtPeak(t *testing.T) {
	f := newFixture(t, 10, 30, 60)
	// Find a cluster pair whose forward path crosses a congested link.
	lids := f.cong.CongestedLinks()
	congested := make(map[itopo.LinkID]bool, len(lids))
	for _, l := range lids {
		congested[l] = true
	}
	cs := f.platform.Clusters
	for i := 0; i < len(cs); i++ {
		for j := 0; j < len(cs); j++ {
			if i == j {
				continue
			}
			hops, err := f.sim.ForwardHops(cs[i], cs[j], false, 1, 0)
			if err != nil {
				continue
			}
			for _, h := range hops {
				if h.InLink >= 0 && congested[h.InLink] {
					prof, _ := f.cong.Profile(h.InLink)
					assertDiurnal(t, f, cs[i], cs[j], prof)
					return
				}
			}
		}
	}
	t.Skip("no pair crossing a congested link found")
}

func assertDiurnal(t *testing.T, f *fixture, src, dst *cdn.Cluster, prof *congestion.Profile) {
	t.Helper()
	mid := (prof.Start + prof.End) / 2
	dayStart := mid - mid%(24*time.Hour)
	var lo, hi time.Duration
	for h := 0; h < 24; h++ {
		at := dayStart + time.Duration(h)*time.Hour
		rtt, err := f.sim.BaseRTT(src, dst, false, 1, 2, at)
		if err != nil {
			t.Skip("pair became unreachable")
		}
		if lo == 0 || rtt < lo {
			lo = rtt
		}
		if rtt > hi {
			hi = rtt
		}
	}
	if hi-lo < prof.Amplitude/2 {
		t.Errorf("diurnal swing %v too small for amplitude %v", hi-lo, prof.Amplitude)
	}
}

func TestClassicArtifactsOccur(t *testing.T) {
	f := newFixture(t, 11, 7, 80)
	f.prober.DstFailProb = 0
	f.prober.ArtifactProb = 1 // force artifacts
	src, dst := f.pair(t)
	tr := f.prober.Traceroute(src, dst, false, false, time.Hour)
	if tr.Complete && len(tr.Hops) >= 4 {
		// With probability 1 an artifact was attempted; verify a duplicate
		// hop exists when the draw picked valid indices.
		dup := false
		seen := map[string]int{}
		for _, h := range tr.Hops {
			if !h.Responsive() {
				continue
			}
			seen[h.Addr.String()]++
			if seen[h.Addr.String()] > 1 {
				dup = true
			}
		}
		_ = dup // duplication depends on index draw; presence is not guaranteed
	}
}

func hopAddrs(tr *trace.Traceroute) string {
	s := ""
	for _, h := range tr.Hops {
		s += h.Addr.String() + "|"
	}
	return s
}

// compatiblePaths reports whether two hop signatures agree at every
// position where both are responsive (rate-limited hops are noise, not
// path changes).
func compatiblePaths(a, b string) bool {
	as := strings.Split(a, "|")
	bs := strings.Split(b, "|")
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i] == "invalid IP" || bs[i] == "invalid IP" {
			continue
		}
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
