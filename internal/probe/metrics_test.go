package probe

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// TestProberMetrics checks the prober's issue counters and the hop-count
// histogram against a known number of measurements.
func TestProberMetrics(t *testing.T) {
	f := newFixture(t, 13, 3, 60)
	reg := obs.NewRegistry()
	f.prober.Instrument(reg)
	src, dst := f.pair(t)

	const n = 10
	for i := 0; i < n; i++ {
		at := time.Duration(i) * time.Hour
		f.prober.Traceroute(src, dst, false, true, at)
		f.prober.Ping(src, dst, false, at)
	}

	snap := reg.Snapshot()
	if got := snap.Counters[MetricTraceroutes]; got != n {
		t.Errorf("traceroutes counter = %d, want %d", got, n)
	}
	if got := snap.Counters[MetricPings]; got != n {
		t.Errorf("pings counter = %d, want %d", got, n)
	}
	h := snap.Histograms[MetricHops]
	if h.Count != n {
		t.Errorf("hop histogram count = %d, want %d (one sample per traceroute)", h.Count, n)
	}
	if h.Sum <= 0 {
		t.Error("hop histogram sum = 0, expected some reported hops")
	}
	// Cumulative buckets end at the total count.
	if len(h.Buckets) == 0 || h.Buckets[len(h.Buckets)-1].Count != n {
		t.Errorf("final (+Inf) bucket = %+v, want cumulative count %d", h.Buckets, n)
	}
}
