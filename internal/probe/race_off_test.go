//go:build !race

package probe

const raceEnabled = false
