package probe

import (
	"testing"
	"time"

	"repro/internal/trace"
)

// TestMeasurementHotPathAllocs guards the warm per-measurement path. With
// the routing view built, the path cache and interner generation filled,
// and the record/rng pools primed, a repeated Paris traceroute or ping at
// fixed coordinates should allocate nothing: the record comes from the
// pool, its hop list reuses retained capacity, the PRNG is pooled, and
// resolved paths are cache hits. The bound tolerates a stray allocation
// from an incidental GC clearing a sync.Pool mid-measurement; the naive
// path this guards against costs dozens per measurement.
func TestMeasurementHotPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under the race detector; pooled paths cannot be allocation-free")
	}
	f := newFixture(t, 9, 3, 60)
	src, dst := f.pair(t)
	at := 6 * time.Hour
	for i := 0; i < 4; i++ { // warm caches and pools
		trace.RecycleTraceroute(f.prober.Traceroute(src, dst, false, true, at))
		trace.RecyclePing(f.prober.Ping(src, dst, false, at))
	}

	if allocs := testing.AllocsPerRun(200, func() {
		trace.RecycleTraceroute(f.prober.Traceroute(src, dst, false, true, at))
	}); allocs > 1 {
		t.Errorf("warm Paris traceroute allocates %.2f times per measurement, want ~0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		trace.RecyclePing(f.prober.Ping(src, dst, false, at))
	}); allocs > 1 {
		t.Errorf("warm ping allocates %.2f times per measurement, want ~0", allocs)
	}
}
