// Package probe implements the measurement tools the platform runs: ping,
// classic traceroute, and Paris traceroute. Probes traverse the virtual
// network (simnet) and emit trace records.
//
// Classic traceroute varies the flow identifier per probe, so per-flow load
// balancers can send successive TTLs down different equal-cost arms and the
// reported path is a stitch of several real paths — the artifact Paris
// traceroute fixes by keeping the flow identifier constant [Augustin et
// al., IMC 2006], and the reason the paper switched to Paris traceroute for
// IPv4 in November 2014.
package probe

import (
	"errors"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cdn"
	"repro/internal/faults"
	"repro/internal/itopo"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// hopScratch pools the per-traceroute resolve buffer used for classic
// (per-TTL flow) probes, which resolve uncached into caller-owned memory.
var hopScratch = sync.Pool{New: func() any {
	b := make([]itopo.PathHop, 0, 64)
	return &b
}}

// Prober issues measurements on a virtual network.
type Prober struct {
	Net *simnet.Net

	// DstFailProb is the probability the destination does not answer a
	// traceroute (filtered probes, rate limiting): the traceroute is then
	// incomplete, matching the paper's ~75% completion rate together with
	// transient unreachability.
	DstFailProb float64

	// Faults, when non-nil, replaces the static failure coins with the
	// schedule's structured ones: DstFailProb gives way to persistent
	// filtering + per-attempt transient failures + the destination attach
	// router's ICMP rate limiter, governed routers' static ResponseProb
	// gives way to their limiter verdict, and brownout loss applies to
	// ping packets and traceroute destination replies. Set it together
	// with simnet.SetFaults before probing starts.
	Faults *faults.Plan

	// ArtifactProb is the probability that a classic traceroute suffers a
	// mid-measurement path artifact (a stale hop repeated later in the
	// output), occasionally producing AS-path loops (paper: 2.16% of IPv4,
	// 5.5% of IPv6 traceroutes carried AS loops; v6 stayed on classic
	// traceroute for the whole study).
	ArtifactProb float64

	// MaxTTL bounds the probed path length.
	MaxTTL int

	// Measurement telemetry; nil until Instrument.
	mTraceroutes    *obs.Counter
	mPings          *obs.Counter
	mUnreachable    *obs.Counter
	mHops           *obs.Histogram
	mRateLimitDrops *obs.Counter
	mDstRateLimited *obs.Counter

	// Flight recorder; nil until Trace. Individual measurements are far
	// too hot for per-measurement spans, so the recorder sees one
	// coalesced batch event per probeBatch measurements.
	rec    *flight.Recorder
	batchN atomic.Int64
}

// probeBatch is the coalescing factor for flight batch events: one event
// per this many measurements.
const probeBatch = 1024

// Metric names exported by Instrument.
const (
	MetricTraceroutes = "s2s_probe_traceroutes_total"
	MetricPings       = "s2s_probe_pings_total"
	MetricUnreachable = "s2s_probe_unreachable_total"
	MetricHops        = "s2s_probe_traceroute_hops"
	// MetricRateLimitDrops counts TTL-exceeded replies shed by a saturated
	// router rate limiter; MetricDstRateLimited counts destination replies
	// shed by the destination attach router's limiter. Both stay zero
	// without a fault plan.
	MetricRateLimitDrops = "s2s_probe_ratelimit_drops_total"
	MetricDstRateLimited = "s2s_probe_dst_ratelimited_total"
)

// Instrument registers the prober's counters in reg: measurements issued
// per kind, destinations with no route at measurement time, and the
// distribution of reported hop counts. A nil registry is a no-op. Call
// before probing starts; counting never alters measurement outcomes.
func (p *Prober) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	p.mTraceroutes = reg.Counter(MetricTraceroutes, "traceroutes issued")
	p.mPings = reg.Counter(MetricPings, "pings issued")
	p.mUnreachable = reg.Counter(MetricUnreachable, "measurements that found no route to the destination")
	p.mHops = reg.Histogram(MetricHops, "hops reported per traceroute", obs.LinearBuckets(4, 4, 16))
	p.mRateLimitDrops = reg.Counter(MetricRateLimitDrops, "TTL-exceeded replies shed by saturated router rate limiters")
	p.mDstRateLimited = reg.Counter(MetricDstRateLimited, "destination replies shed by the destination attach router's rate limiter")
}

// Trace attaches a flight recorder: every probeBatch-th measurement emits
// a batch event carrying the cumulative measurement count. A nil recorder
// is a no-op. Call before probing starts.
func (p *Prober) Trace(rec *flight.Recorder) { p.rec = rec }

// countMeasurement advances the batch counter and emits a coalesced batch
// event at every probeBatch boundary.
func (p *Prober) countMeasurement(at time.Duration) {
	if p.rec == nil {
		return
	}
	if n := p.batchN.Add(1); n%probeBatch == 0 {
		p.rec.Event(flight.PhProbeBatch, at, flight.Attrs{N: n})
	}
}

// New returns a Prober with the standard error rates.
func New(n *simnet.Net) *Prober {
	return &Prober{
		Net:          n,
		DstFailProb:  0.17,
		ArtifactProb: 0.06,
		MaxTTL:       64,
	}
}

// serverAddr returns the measurement server address for the family.
func serverAddr(c *cdn.Cluster, v6 bool) netip.Addr {
	if v6 {
		return c.Server6
	}
	return c.Server4
}

// pairFlow derives the stable flow identifier a measurement process uses
// for a destination (fixed source/destination ports).
func pairFlow(srcID, dstID int, v6 bool) uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	mix(uint64(int64(srcID)))
	mix(uint64(int64(dstID)))
	if v6 {
		mix(7)
	}
	return h
}

// dstLimiterSalt and hopLimiterSalt namespace a pair's limiter draws: the
// destination's echo reply and each TTL's exceeded reply are independent
// coins, but each is stable across retry attempts inside one persistence
// window (see faults.Plan.RouterLimited).
func dstLimiterSalt(base uint64) uint64 { return base ^ 0xd1b54a32d192ed03 }

func hopLimiterSalt(base uint64, ttl int) uint64 {
	return base + uint64(ttl)*0x9e3779b97f4a7c15
}

func probeFlow(base uint64, ttl int, at time.Duration) uint64 {
	h := base
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	mix(uint64(ttl))
	mix(uint64(int64(at)))
	return h
}

// Ping measures the RTT between two measurement servers at virtual time at.
// Records come from the trace pool: consumers that stream them may hand
// them back via trace.RecyclePing.
func (p *Prober) Ping(src, dst *cdn.Cluster, v6 bool, at time.Duration) *trace.Ping {
	rec := trace.NewPooledPing()
	rec.SrcID, rec.DstID = src.ID, dst.ID
	rec.Src, rec.Dst = serverAddr(src, v6), serverAddr(dst, v6)
	rec.V6, rec.At = v6, at
	p.mPings.Inc()
	p.countMeasurement(at)
	rng := p.Net.Rand(simnet.KindPing, src.ID, dst.ID, v6, at)
	defer p.Net.PutRand(rng)
	flowF := pairFlow(src.ID, dst.ID, v6)
	flowR := pairFlow(dst.ID, src.ID, v6)

	fwd, err := p.Net.ForwardHops(src, dst, v6, flowF, at)
	if err != nil {
		p.mUnreachable.Inc()
		rec.Lost = true
		return rec
	}
	rev, err := p.Net.ForwardHops(dst, src, v6, flowR, at)
	if err != nil {
		p.mUnreachable.Inc()
		rec.Lost = true
		return rec
	}
	cong := p.Net.CongestionDelay(fwd, len(fwd)-1, at) + p.Net.CongestionDelay(rev, len(rev)-1, at)
	extra := p.Net.FaultLoss(fwd, len(fwd)-1, at) + p.Net.FaultLoss(rev, len(rev)-1, at)
	if p.Net.LostFaulted(rng, cong, extra) {
		rec.Lost = true
		return rec
	}
	base := p.Net.OneWayDelay(fwd, at) + p.Net.OneWayDelay(rev, at) + 4*p.Net.Config().ServerLinkDelay
	rec.RTT = base + p.Net.Noise(rng, len(fwd)+len(rev))
	return rec
}

// Traceroute measures the hop-by-hop path between two measurement servers.
// With paris=true the flow identifier is held constant across probes.
func (p *Prober) Traceroute(src, dst *cdn.Cluster, v6, paris bool, at time.Duration) *trace.Traceroute {
	rec := trace.NewPooledTraceroute()
	rec.SrcID, rec.DstID = src.ID, dst.ID
	rec.Src, rec.Dst = serverAddr(src, v6), serverAddr(dst, v6)
	rec.V6, rec.Paris, rec.At = v6, paris, at
	p.mTraceroutes.Inc()
	p.countMeasurement(at)
	rng := p.Net.Rand(simnet.KindTraceroute, src.ID, dst.ID, v6, at)
	defer p.Net.PutRand(rng)
	base := pairFlow(src.ID, dst.ID, v6)

	// The destination's reply travels the true reverse route.
	revFlow := pairFlow(dst.ID, src.ID, v6)
	rev, revErr := p.Net.ForwardHops(dst, src, v6, revFlow, at)

	serverLink := p.Net.Config().ServerLinkDelay
	dstAnswers := rng.Float64() >= p.DstFailProb
	if p.Faults != nil {
		// The fault plan replaces the static destination coin (drawn above
		// regardless, keeping the rng stream uniform across pairs within a
		// faulted run) with structured failure: persistent filtering that a
		// retry inside the same persistence window cannot recover, a
		// transient per-attempt failure that it can, the destination attach
		// router's ICMP rate limiter, and brownout loss on the reply path.
		dstAnswers = !p.Faults.DstFiltered(src.ID, dst.ID, v6, at) &&
			!p.Faults.DstFlaky(src.ID, dst.ID, v6, at)
		if dstAnswers {
			if _, drop := p.Faults.RouterLimited(dst.Attach, at, dstLimiterSalt(base)); drop {
				p.mDstRateLimited.Inc()
				dstAnswers = false
			}
		}
		if dstAnswers && revErr == nil {
			if loss := p.Net.FaultLoss(rev, len(rev)-1, at); loss > 0 && rng.Float64() < loss {
				dstAnswers = false
			}
		}
	}

	// Classic probes derive a fresh flow per TTL, so their resolves are
	// one-shot: resolve into a pooled scratch buffer instead of filling
	// the path cache (and the epoch's intern slab) with entries no later
	// lookup can ever hit.
	var scratch *[]itopo.PathHop
	if !paris {
		scratch = hopScratch.Get().(*[]itopo.PathHop)
		defer hopScratch.Put(scratch)
	}
	for ttl := 1; ttl <= p.MaxTTL; ttl++ {
		var hops []itopo.PathHop
		var err error
		if paris {
			hops, err = p.Net.ForwardHops(src, dst, v6, base, at)
		} else {
			flow := probeFlow(base, ttl, at)
			*scratch, err = p.Net.ForwardHopsScratch(*scratch, src, dst, v6, flow, at)
			hops = *scratch
		}
		if err != nil {
			if ttl == 1 {
				p.mUnreachable.Inc()
			}
			if errors.Is(err, simnet.ErrUnreachable) {
				break // no route: empty/truncated output
			}
			break
		}
		if ttl >= len(hops) {
			// The probe reaches the destination server.
			if dstAnswers && revErr == nil {
				e2e := p.Net.OneWayDelay(hops, at) + p.Net.OneWayDelay(rev, at) + 4*serverLink
				rec.Hops = append(rec.Hops, trace.Hop{
					Addr: serverAddr(dst, v6),
					RTT:  e2e + p.Net.Noise(rng, len(hops)+len(rev)),
				})
				rec.Complete = true
				rec.RTT = rec.Hops[len(rec.Hops)-1].RTT
			}
			break
		}
		h := hops[ttl]
		router := p.Net.R.Router(h.Router)
		responds := rng.Float64() < router.ResponseProb
		if p.Faults != nil {
			// Governed routers answer by their limiter's verdict instead of
			// the static coin (which is still drawn, keeping the rng stream
			// aligned between governed and ungoverned routers).
			if limited, drop := p.Faults.RouterLimited(h.Router, at, hopLimiterSalt(base, ttl)); limited {
				responds = !drop
				if drop {
					p.mRateLimitDrops.Inc()
				}
			}
		}
		if !responds {
			rec.Hops = append(rec.Hops, trace.Hop{})
			continue
		}
		// TTL-exceeded replies are assumed to return along the reversed
		// forward segment: hop RTT ≈ 2 × (propagation + congestion) up to
		// this hop.
		oneWay := h.Cum + p.Net.CongestionDelay(hops, ttl, at)
		hopRTT := 2*oneWay + 2*serverLink + p.Net.Noise(rng, ttl)
		addr := p.Net.R.Links[h.InLink].AddrOn(h.Router, v6)
		rec.Hops = append(rec.Hops, trace.Hop{Addr: addr, RTT: hopRTT})
	}

	// Classic traceroute artifact: a mid-measurement path change makes a
	// stale earlier hop reappear later in the output.
	if !paris && len(rec.Hops) >= 4 && rng.Float64() < p.ArtifactProb {
		i := 1 + rng.Intn(len(rec.Hops)/2)
		j := len(rec.Hops)/2 + rng.Intn(len(rec.Hops)/2)
		if i < j && j < len(rec.Hops)-1 { // never clobber the final hop
			rec.Hops[j] = rec.Hops[i]
		}
	}
	p.mHops.Observe(float64(len(rec.Hops)))
	return rec
}
