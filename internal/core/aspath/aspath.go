// Package aspath infers AS-level paths from traceroute output the way the
// paper does (§2.1, §4.1): each hop address is mapped to the origin AS of
// its longest matching BGP prefix; unresponsive or unmapped hops are
// imputed when both known neighbors agree; consecutive duplicates collapse
// into one AS hop; and paths are classified for the Table 1 accounting
// (complete AS-level data / missing AS-level data / missing IP-level data).
//
// Route changes are detected by the token-level edit distance between the
// AS paths of consecutive traceroutes (§4.1).
package aspath

import (
	"strings"

	"repro/internal/ipam"
	"repro/internal/trace"
)

// Path is an AS-level path with consecutive duplicates collapsed.
type Path []ipam.ASN

// String renders the path as "AS1 AS2 AS3".
func (p Path) String() string {
	var b strings.Builder
	for i, a := range p {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(a.String())
	}
	return b.String()
}

// Equal reports element-wise equality.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// HasLoop reports whether an AS appears at two non-adjacent positions —
// the AS-path loops the paper excludes (2.16% of IPv4, 5.5% of IPv6
// traceroutes).
func (p Path) HasLoop() bool {
	seen := make(map[ipam.ASN]bool, len(p))
	for _, a := range p {
		if seen[a] {
			return true
		}
		seen[a] = true
	}
	return false
}

// Key returns a compact map key for the path.
func (p Path) Key() string { return p.String() }

// Completeness classifies a traceroute's hop data (Table 1). A traceroute
// with any unresponsive hop counts as missing IP-level data; otherwise one
// with any unmapped address counts as missing AS-level data.
type Completeness uint8

// Completeness classes.
const (
	CompleteASLevel Completeness = iota
	MissingASLevel
	MissingIPLevel
)

// String returns the Table 1 row label.
func (c Completeness) String() string {
	switch c {
	case CompleteASLevel:
		return "complete AS-level data"
	case MissingASLevel:
		return "missing AS-level data"
	case MissingIPLevel:
		return "missing IP-level data"
	default:
		return "unknown"
	}
}

// Result is the inference outcome for one traceroute.
type Result struct {
	// Path is the inferred AS path including the source and destination
	// ASes. When Resolved is false, unresolved hops were dropped from the
	// path and it should not be used for change detection.
	Path Path
	// Class is the Table 1 completeness class.
	Class Completeness
	// Resolved reports that every hop mapped to an AS, possibly after
	// imputation.
	Resolved bool
	// Imputed counts hops whose AS was filled in by imputation.
	Imputed int
	// Loop reports a non-adjacent AS repetition.
	Loop bool
}

// Usable reports whether the path should enter timeline analyses: fully
// resolved and loop-free.
func (r Result) Usable() bool { return r.Resolved && !r.Loop }

// Mapper infers AS paths using a BGP-derived longest-prefix-match view.
type Mapper struct {
	Table *ipam.Table
	// NoImpute disables missing-hop imputation (used by the ablation that
	// quantifies how much imputation recovers).
	NoImpute bool
}

// NewMapper returns a Mapper over the given IP-to-AS table.
func NewMapper(t *ipam.Table) *Mapper { return &Mapper{Table: t} }

// hop markers used during inference.
const (
	hopUnresponsive ipam.ASN = 0
	// hopUnmapped marks a responsive hop with no BGP cover. The value is
	// outside any ASN the simulator allocates.
	hopUnmapped ipam.ASN = ^ipam.ASN(0)
)

// Infer maps a traceroute to an AS path.
func (m *Mapper) Infer(tr *trace.Traceroute) Result {
	var res Result

	// The source server's AS anchors the path.
	raw := make([]ipam.ASN, 0, len(tr.Hops)+1)
	if src, ok := m.Table.Lookup(tr.Src); ok {
		raw = append(raw, src)
	} else {
		raw = append(raw, hopUnmapped)
	}
	for _, h := range tr.Hops {
		if !h.Responsive() {
			raw = append(raw, hopUnresponsive)
			continue
		}
		if as, ok := m.Table.Lookup(h.Addr); ok {
			raw = append(raw, as)
		} else {
			raw = append(raw, hopUnmapped)
		}
	}

	// Classify before imputation: the Table 1 accounting reflects the raw
	// measurement, not what inference recovered.
	res.Class = CompleteASLevel
	for _, a := range raw[1:] { // source lookup always succeeds on real data
		switch a {
		case hopUnresponsive:
			res.Class = MissingIPLevel
		case hopUnmapped:
			if res.Class == CompleteASLevel {
				res.Class = MissingASLevel
			}
		}
	}

	// Imputation: a run of unknown hops flanked by the same AS on both
	// sides belongs to that AS.
	if !m.NoImpute {
		res.Imputed = impute(raw)
	}

	// Collapse consecutive duplicates, dropping still-unknown hops.
	res.Resolved = true
	for _, a := range raw {
		if a == hopUnresponsive || a == hopUnmapped {
			res.Resolved = false
			continue
		}
		if len(res.Path) == 0 || res.Path[len(res.Path)-1] != a {
			res.Path = append(res.Path, a)
		}
	}
	res.Loop = res.Path.HasLoop()
	return res
}

// impute fills runs of unknown hops whose flanking ASes agree, returning
// the number of hops filled.
func impute(raw []ipam.ASN) int {
	filled := 0
	i := 0
	for i < len(raw) {
		if raw[i] != hopUnresponsive && raw[i] != hopUnmapped {
			i++
			continue
		}
		// Find the run [i, j).
		j := i
		for j < len(raw) && (raw[j] == hopUnresponsive || raw[j] == hopUnmapped) {
			j++
		}
		if i > 0 && j < len(raw) && raw[i-1] == raw[j] {
			for k := i; k < j; k++ {
				raw[k] = raw[j]
				filled++
			}
		}
		i = j
	}
	return filled
}

// EditDistance returns the token-level Levenshtein distance between two AS
// paths — the paper's measure of how different two routes are; zero means
// no routing change.
func EditDistance(a, b Path) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// Tally accumulates the Table 1 accounting.
type Tally struct {
	Complete  int
	MissingAS int
	MissingIP int
	Loops     int
	Total     int
}

// Add records one inference result.
func (t *Tally) Add(r Result) {
	t.Total++
	switch r.Class {
	case CompleteASLevel:
		t.Complete++
	case MissingASLevel:
		t.MissingAS++
	case MissingIPLevel:
		t.MissingIP++
	}
	if r.Loop {
		t.Loops++
	}
}

// Fractions returns the Table 1 row fractions (complete, missing AS-level,
// missing IP-level) of all tallied traceroutes.
func (t *Tally) Fractions() (complete, missingAS, missingIP float64) {
	if t.Total == 0 {
		return 0, 0, 0
	}
	n := float64(t.Total)
	return float64(t.Complete) / n, float64(t.MissingAS) / n, float64(t.MissingIP) / n
}
