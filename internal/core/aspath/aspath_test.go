package aspath

import (
	"net/netip"
	"testing"
	"testing/quick"

	"repro/internal/ipam"
	"repro/internal/trace"
)

// testMapper builds a table:
//
//	10.0.0.0/8   -> AS100 (source space)
//	20.0.0.0/8   -> AS200
//	30.0.0.0/8   -> AS300 (destination space)
//	40.0.0.0/8   -> AS400
//	(90.0.0.0/8 deliberately unannounced)
func testMapper(t *testing.T) *Mapper {
	t.Helper()
	tbl := ipam.NewTable()
	for _, e := range []struct {
		p  string
		as ipam.ASN
	}{
		{"10.0.0.0/8", 100},
		{"20.0.0.0/8", 200},
		{"30.0.0.0/8", 300},
		{"40.0.0.0/8", 400},
	} {
		if err := tbl.Insert(netip.MustParsePrefix(e.p), e.as); err != nil {
			t.Fatal(err)
		}
	}
	return NewMapper(tbl)
}

func tr(src string, hops ...string) *trace.Traceroute {
	t := &trace.Traceroute{Src: netip.MustParseAddr(src), Complete: true}
	for _, h := range hops {
		if h == "*" {
			t.Hops = append(t.Hops, trace.Hop{})
		} else {
			t.Hops = append(t.Hops, trace.Hop{Addr: netip.MustParseAddr(h)})
		}
	}
	return t
}

func TestInferCleanPath(t *testing.T) {
	m := testMapper(t)
	r := m.Infer(tr("10.0.0.1", "10.0.0.2", "20.0.0.1", "20.0.0.2", "30.0.0.1"))
	if !r.Path.Equal(Path{100, 200, 300}) {
		t.Errorf("path = %v", r.Path)
	}
	if r.Class != CompleteASLevel || !r.Resolved || r.Loop || r.Imputed != 0 {
		t.Errorf("result = %+v", r)
	}
	if !r.Usable() {
		t.Error("clean path should be usable")
	}
}

func TestInferImputesUnresponsiveHop(t *testing.T) {
	m := testMapper(t)
	// Unresponsive hop inside AS200's segment: imputed.
	r := m.Infer(tr("10.0.0.1", "20.0.0.1", "*", "20.0.0.2", "30.0.0.1"))
	if !r.Path.Equal(Path{100, 200, 300}) {
		t.Errorf("path = %v", r.Path)
	}
	if r.Class != MissingIPLevel {
		t.Errorf("class = %v, want missing IP-level", r.Class)
	}
	if !r.Resolved || r.Imputed != 1 {
		t.Errorf("resolved=%v imputed=%d", r.Resolved, r.Imputed)
	}
}

func TestInferImputesUnmappedHop(t *testing.T) {
	m := testMapper(t)
	// 90.0.0.1 is responsive but unannounced; flanked by AS200 → imputed.
	r := m.Infer(tr("10.0.0.1", "20.0.0.1", "90.0.0.1", "20.0.0.2", "30.0.0.1"))
	if !r.Path.Equal(Path{100, 200, 300}) {
		t.Errorf("path = %v", r.Path)
	}
	if r.Class != MissingASLevel {
		t.Errorf("class = %v, want missing AS-level", r.Class)
	}
	if !r.Resolved || r.Imputed != 1 {
		t.Errorf("resolved=%v imputed=%d", r.Resolved, r.Imputed)
	}
}

func TestInferUnresolvableBoundaryHop(t *testing.T) {
	m := testMapper(t)
	// Unknown hop at an AS boundary (AS200 → AS300): cannot impute.
	r := m.Infer(tr("10.0.0.1", "20.0.0.1", "*", "30.0.0.1"))
	if r.Resolved {
		t.Error("boundary gap should remain unresolved")
	}
	if r.Usable() {
		t.Error("unresolved result must not be usable")
	}
	// The path still contains the known segments.
	if !r.Path.Equal(Path{100, 200, 300}) {
		t.Errorf("path = %v", r.Path)
	}
}

func TestInferRunOfMissingHops(t *testing.T) {
	m := testMapper(t)
	r := m.Infer(tr("10.0.0.1", "20.0.0.1", "*", "90.0.0.1", "20.0.0.2", "30.0.0.1"))
	if !r.Resolved || r.Imputed != 2 {
		t.Errorf("run imputation failed: %+v", r)
	}
	// Mixed missing kinds: IP-level wins the classification.
	if r.Class != MissingIPLevel {
		t.Errorf("class = %v", r.Class)
	}
}

func TestInferLoopDetection(t *testing.T) {
	m := testMapper(t)
	// 200 ... 400 ... 200: AS loop.
	r := m.Infer(tr("10.0.0.1", "20.0.0.1", "40.0.0.1", "20.0.0.2", "30.0.0.1"))
	if !r.Loop {
		t.Error("loop not detected")
	}
	if r.Usable() {
		t.Error("looped path must not be usable")
	}
}

func TestInferCollapsesConsecutiveDuplicates(t *testing.T) {
	m := testMapper(t)
	r := m.Infer(tr("10.0.0.1", "10.0.0.9", "10.0.1.1", "20.0.0.1", "20.0.5.5", "20.1.1.1", "30.0.0.1"))
	if !r.Path.Equal(Path{100, 200, 300}) {
		t.Errorf("path = %v", r.Path)
	}
}

func TestPathHelpers(t *testing.T) {
	p := Path{100, 200, 300}
	if p.String() != "AS100 AS200 AS300" {
		t.Errorf("String = %q", p.String())
	}
	if p.Key() != p.String() {
		t.Error("Key should equal String")
	}
	if !p.Equal(Path{100, 200, 300}) || p.Equal(Path{100, 200}) || p.Equal(Path{100, 200, 301}) {
		t.Error("Equal broken")
	}
	if p.HasLoop() {
		t.Error("no loop expected")
	}
	if !(Path{100, 200, 100}).HasLoop() {
		t.Error("loop expected")
	}
	if (Path{}).HasLoop() {
		t.Error("empty path has no loop")
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b Path
		want int
	}{
		{Path{1, 2, 3}, Path{1, 2, 3}, 0},
		{Path{1, 2, 3, 4}, Path{1, 2, 4}, 1}, // the paper's example: one removal
		{Path{1, 2, 3}, Path{1, 5, 3}, 1},    // substitution
		{Path{1, 2, 3}, Path{}, 3},           // deletion of all
		{Path{}, Path{7}, 1},                 // insertion
		{Path{1, 2, 3}, Path{4, 5, 6, 7}, 4}, // all different + 1 longer
		{Path{1, 2, 3, 4, 5}, Path{1, 3, 5}, 2},
	}
	for _, c := range cases {
		if got := EditDistance(c.a, c.b); got != c.want {
			t.Errorf("EditDistance(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEditDistanceProperties(t *testing.T) {
	toPath := func(raw []uint8) Path {
		p := make(Path, len(raw)%7)
		for i := range p {
			p[i] = ipam.ASN(raw[i]%5 + 1)
		}
		return p
	}
	// Symmetry and identity-of-indiscernibles-ish properties.
	f := func(ra, rb []uint8) bool {
		a, b := toPath(ra), toPath(rb)
		d1, d2 := EditDistance(a, b), EditDistance(b, a)
		if d1 != d2 {
			return false
		}
		if a.Equal(b) != (d1 == 0) {
			return false
		}
		// Bounded by the longer length.
		longer := len(a)
		if len(b) > longer {
			longer = len(b)
		}
		return d1 <= longer
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEditDistanceTriangleInequality(t *testing.T) {
	toPath := func(raw []uint8) Path {
		p := make(Path, len(raw)%6)
		for i := range p {
			p[i] = ipam.ASN(raw[i]%4 + 1)
		}
		return p
	}
	f := func(ra, rb, rc []uint8) bool {
		a, b, c := toPath(ra), toPath(rb), toPath(rc)
		return EditDistance(a, c) <= EditDistance(a, b)+EditDistance(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTally(t *testing.T) {
	var tally Tally
	tally.Add(Result{Class: CompleteASLevel})
	tally.Add(Result{Class: CompleteASLevel, Loop: true})
	tally.Add(Result{Class: MissingASLevel})
	tally.Add(Result{Class: MissingIPLevel})
	c, a, i := tally.Fractions()
	if c != 0.5 || a != 0.25 || i != 0.25 {
		t.Errorf("fractions = %v %v %v", c, a, i)
	}
	if tally.Loops != 1 || tally.Total != 4 {
		t.Errorf("tally = %+v", tally)
	}
	var empty Tally
	if c, a, i := empty.Fractions(); c != 0 || a != 0 || i != 0 {
		t.Error("empty tally fractions should be 0")
	}
}

func TestCompletenessString(t *testing.T) {
	if CompleteASLevel.String() == "" || MissingASLevel.String() == "" || MissingIPLevel.String() == "" {
		t.Error("empty completeness strings")
	}
	if Completeness(9).String() != "unknown" {
		t.Error("unknown class string")
	}
}
