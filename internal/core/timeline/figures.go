package timeline

import (
	"time"

	"repro/internal/core/stats"
	"repro/internal/trace"
)

// PathsPerTimeline returns the number of unique AS paths per timeline
// (Figure 2a).
func PathsPerTimeline(tls []*Timeline, interval time.Duration) []float64 {
	out := make([]float64, 0, len(tls))
	for _, tl := range tls {
		out = append(out, float64(len(tl.UniquePaths(interval))))
	}
	return out
}

// PathPairsPerServerPair returns, per undirected server pair, the number
// of unique (forward path, reverse path) combinations observed at the same
// timestamp (Figure 2b). Timelines must all share a protocol.
func PathPairsPerServerPair(tls []*Timeline) []float64 {
	byKey := make(map[trace.PairKey]*Timeline, len(tls))
	for _, tl := range tls {
		byKey[tl.Key] = tl
	}
	seenPair := make(map[trace.PairKey]bool)
	var out []float64
	for _, tl := range tls {
		und := tl.Key.Undirected()
		if seenPair[und] {
			continue
		}
		seenPair[und] = true
		fwd := byKey[und]
		rev := byKey[und.Reverse()]
		if fwd == nil || rev == nil {
			continue
		}
		revAt := make(map[time.Duration]string, len(rev.Obs))
		for _, o := range rev.Obs {
			revAt[o.At] = o.Path.Key()
		}
		combos := make(map[string]bool)
		for _, o := range fwd.Obs {
			if rp, ok := revAt[o.At]; ok {
				combos[o.Path.Key()+"|"+rp] = true
			}
		}
		if len(combos) > 0 {
			out = append(out, float64(len(combos)))
		}
	}
	return out
}

// PopularPrevalence returns the prevalence of each timeline's most popular
// AS path (Figure 3a).
func PopularPrevalence(tls []*Timeline, interval time.Duration) []float64 {
	var out []float64
	for _, tl := range tls {
		if _, prev := tl.PopularPath(interval); prev > 0 {
			out = append(out, prev)
		}
	}
	return out
}

// ChangesPerTimeline returns the routing-change count per timeline
// (Figure 3b).
func ChangesPerTimeline(tls []*Timeline) []float64 {
	out := make([]float64, 0, len(tls))
	for _, tl := range tls {
		out = append(out, float64(tl.NumChanges()))
	}
	return out
}

// LifetimeDeltaSamples returns the Figure 4/5 scatter: per sub-optimal path
// bucket, its lifetime (hours) and its criterion-percentile RTT increase
// over the best path (ms).
func LifetimeDeltaSamples(tls []*Timeline, interval time.Duration, crit BestCriterion) (lifetimeHours, deltaMs []float64) {
	for _, tl := range tls {
		for _, s := range tl.SuboptimalDeltas(interval, crit) {
			lifetimeHours = append(lifetimeHours, s.Lifetime.Hours())
			deltaMs = append(deltaMs, s.DeltaMs)
		}
	}
	return lifetimeHours, deltaMs
}

// SuboptimalPrevalence returns, per timeline, the summed prevalence of
// sub-optimal AS paths whose baseline (10th percentile) RTT increase is at
// least thresholdMs (Figure 6). Timelines with a single path contribute
// zero, matching the figure's ECDF population.
func SuboptimalPrevalence(tls []*Timeline, interval time.Duration, thresholdMs float64) []float64 {
	out := make([]float64, 0, len(tls))
	for _, tl := range tls {
		sum := 0.0
		for _, s := range tl.SuboptimalDeltas(interval, ByP10) {
			if s.DeltaMs >= thresholdMs {
				sum += s.Prevalence
			}
		}
		out = append(out, sum)
	}
	return out
}

// FractionDeltaAtLeast returns the fraction of sub-optimal path buckets
// whose RTT increase is at least deltaMs and, when minPrevalence > 0,
// whose prevalence is at least that — the abstract's "4% (7%) of routing
// changes increase RTTs by at least 50 ms for at least 20% of the study
// period".
func FractionDeltaAtLeast(tls []*Timeline, interval time.Duration, crit BestCriterion, deltaMs, minPrevalence float64) float64 {
	total, hit := 0, 0
	for _, tl := range tls {
		for _, s := range tl.SuboptimalDeltas(interval, crit) {
			total++
			if s.DeltaMs >= deltaMs && s.Prevalence >= minPrevalence {
				hit++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}

// DeltaQuantileMs returns the q-quantile (0..1) of sub-optimal path RTT
// increases — e.g. q=0.8 recovers the abstract's "20% of routing changes
// impact paths by at least 26 ms (31 ms)".
func DeltaQuantileMs(tls []*Timeline, interval time.Duration, crit BestCriterion, q float64) float64 {
	_, deltas := LifetimeDeltaSamples(tls, interval, crit)
	if len(deltas) == 0 {
		return 0
	}
	return stats.Percentile(deltas, q*100)
}
