// Package timeline implements the paper's Section 4 analyses over "trace
// timelines" — the time-ordered traceroutes of one directed server pair on
// one protocol. It computes unique AS paths and their lifetimes,
// prevalence, routing-change counts (edit distance between consecutive AS
// paths), best-path RTT deltas, and the reductions behind Figures 2–7.
package timeline

import (
	"sort"
	"time"

	"repro/internal/core/aspath"
	"repro/internal/core/stats"
	"repro/internal/trace"
)

// Observation is one usable traceroute on a timeline.
type Observation struct {
	At   time.Duration
	Path aspath.Path
	// RTTms is the end-to-end round-trip time in milliseconds.
	RTTms float64
}

// Timeline is the time series of one directed pair on one protocol.
type Timeline struct {
	Key trace.PairKey
	Obs []Observation
}

// Builder consumes traceroutes, infers AS paths, keeps the Table 1
// accounting, and groups usable observations into timelines.
type Builder struct {
	Mapper *aspath.Mapper
	// Interval is the measurement cadence; a path observed once is assumed
	// to persist for one interval (the paper's lifetime convention).
	Interval time.Duration

	// TallyV4/TallyV6 accumulate Table 1 per protocol over *complete*
	// traceroutes (the paper's Table 1 covers the completed subset).
	TallyV4, TallyV6 aspath.Tally
	// Incomplete counts traceroutes that never reached the destination.
	Incomplete int
	// LoopsDropped counts usable-path rejections due to AS loops.
	LoopsDropped int

	timelines map[trace.PairKey]*Timeline
	// intern deduplicates identical AS paths so long campaigns don't hold
	// one slice per observation.
	intern map[string]aspath.Path
}

// NewBuilder returns a Builder using the given IP-to-AS mapper and
// measurement interval.
func NewBuilder(m *aspath.Mapper, interval time.Duration) *Builder {
	return &Builder{
		Mapper:    m,
		Interval:  interval,
		timelines: make(map[trace.PairKey]*Timeline),
		intern:    make(map[string]aspath.Path),
	}
}

// Add consumes one traceroute record.
func (b *Builder) Add(tr *trace.Traceroute) {
	if !tr.Complete {
		b.Incomplete++
		return
	}
	res := b.Mapper.Infer(tr)
	if tr.V6 {
		b.TallyV6.Add(res)
	} else {
		b.TallyV4.Add(res)
	}
	if !res.Resolved {
		return
	}
	if res.Loop {
		b.LoopsDropped++
		return
	}
	pk := res.Path.Key()
	if shared, ok := b.intern[pk]; ok {
		res.Path = shared
	} else {
		b.intern[pk] = res.Path
	}
	k := tr.Key()
	tl := b.timelines[k]
	if tl == nil {
		tl = &Timeline{Key: k}
		b.timelines[k] = tl
	}
	tl.Obs = append(tl.Obs, Observation{
		At:    tr.At,
		Path:  res.Path,
		RTTms: float64(tr.RTT) / float64(time.Millisecond),
	})
}

// Timelines returns all timelines sorted by key.
func (b *Builder) Timelines() []*Timeline {
	out := make([]*Timeline, 0, len(b.timelines))
	for _, tl := range b.timelines {
		out = append(out, tl)
	}
	sort.Slice(out, func(i, j int) bool {
		a, c := out[i].Key, out[j].Key
		if a.SrcID != c.SrcID {
			return a.SrcID < c.SrcID
		}
		if a.DstID != c.DstID {
			return a.DstID < c.DstID
		}
		return !a.V6 && c.V6
	})
	return out
}

// Timeline returns one timeline by key.
func (b *Builder) Timeline(k trace.PairKey) (*Timeline, bool) {
	tl, ok := b.timelines[k]
	return tl, ok
}

// ByProtocol splits timelines by family.
func ByProtocol(tls []*Timeline) (v4, v6 []*Timeline) {
	for _, tl := range tls {
		if tl.Key.V6 {
			v6 = append(v6, tl)
		} else {
			v4 = append(v4, tl)
		}
	}
	return v4, v6
}

// PathStat aggregates one unique AS path on a timeline — the paper's "AS
// path bucket".
type PathStat struct {
	Path  aspath.Path
	Count int
	// Lifetime is Count × the measurement interval: the total time the
	// path was observed (periods need not be contiguous).
	Lifetime time.Duration
	// RTTs are the end-to-end RTTs (ms) observed over this path.
	RTTs []float64
}

// P10, P90, Std return the bucket's RTT statistics.
func (ps *PathStat) P10() float64 { return stats.Percentile(ps.RTTs, 10) }

// P90 returns the 90th percentile of the bucket's RTTs.
func (ps *PathStat) P90() float64 { return stats.Percentile(ps.RTTs, 90) }

// Std returns the standard deviation of the bucket's RTTs.
func (ps *PathStat) Std() float64 { return stats.StdDev(ps.RTTs) }

// UniquePaths buckets the timeline's observations by AS path, ordered by
// descending lifetime then path string.
func (tl *Timeline) UniquePaths(interval time.Duration) []*PathStat {
	byKey := make(map[string]*PathStat)
	for _, o := range tl.Obs {
		k := o.Path.Key()
		ps := byKey[k]
		if ps == nil {
			ps = &PathStat{Path: o.Path}
			byKey[k] = ps
		}
		ps.Count++
		ps.RTTs = append(ps.RTTs, o.RTTms)
	}
	out := make([]*PathStat, 0, len(byKey))
	for _, ps := range byKey {
		ps.Lifetime = time.Duration(ps.Count) * interval
		out = append(out, ps)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Lifetime != out[j].Lifetime {
			return out[i].Lifetime > out[j].Lifetime
		}
		return out[i].Path.Key() < out[j].Path.Key()
	})
	return out
}

// Change is one routing change: consecutive observations whose AS paths
// differ. Following the paper, the change is timestamped at the later
// observation.
type Change struct {
	At       time.Duration
	Dist     int
	From, To aspath.Path
}

// Changes returns the routing changes along the timeline.
func (tl *Timeline) Changes() []Change {
	var out []Change
	for i := 1; i < len(tl.Obs); i++ {
		prev, cur := tl.Obs[i-1], tl.Obs[i]
		if prev.Path.Equal(cur.Path) {
			continue
		}
		out = append(out, Change{
			At:   cur.At,
			Dist: aspath.EditDistance(prev.Path, cur.Path),
			From: prev.Path,
			To:   cur.Path,
		})
	}
	return out
}

// NumChanges returns the number of routing changes.
func (tl *Timeline) NumChanges() int { return len(tl.Changes()) }

// Prevalence returns, per unique path, the fraction of observations using
// it (the paper's prevalence, after Paxson).
func (tl *Timeline) Prevalence(interval time.Duration) map[string]float64 {
	out := make(map[string]float64)
	if len(tl.Obs) == 0 {
		return out
	}
	for _, ps := range tl.UniquePaths(interval) {
		out[ps.Path.Key()] = float64(ps.Count) / float64(len(tl.Obs))
	}
	return out
}

// PopularPath returns the path with the longest lifetime and its
// prevalence.
func (tl *Timeline) PopularPath(interval time.Duration) (*PathStat, float64) {
	ups := tl.UniquePaths(interval)
	if len(ups) == 0 {
		return nil, 0
	}
	return ups[0], float64(ups[0].Count) / float64(len(tl.Obs))
}

// BestCriterion selects how the "best" AS path of a timeline is chosen.
type BestCriterion uint8

// Criteria: the paper's default is the lowest 10th percentile of RTTs;
// §4.2 also discusses the 90th percentile and the standard deviation.
const (
	ByP10 BestCriterion = iota
	ByP90
	ByStd
)

func (c BestCriterion) value(ps *PathStat) float64 {
	switch c {
	case ByP90:
		return ps.P90()
	case ByStd:
		return ps.Std()
	default:
		return ps.P10()
	}
}

// BestPath returns the bucket minimizing the criterion ("best" among paths
// actually observed, as the paper stresses).
func (tl *Timeline) BestPath(interval time.Duration, crit BestCriterion) *PathStat {
	ups := tl.UniquePaths(interval)
	if len(ups) == 0 {
		return nil
	}
	best := ups[0]
	bestV := crit.value(best)
	for _, ps := range ups[1:] {
		if v := crit.value(ps); v < bestV || (v == bestV && ps.Path.Key() < best.Path.Key()) {
			best, bestV = ps, v
		}
	}
	return best
}

// SuboptimalDelta is one sub-optimal path's (lifetime, RTT-increase)
// sample: the Figure 4/5 scatter input.
type SuboptimalDelta struct {
	Lifetime time.Duration
	// DeltaMs is the increase of the criterion percentile over the best
	// path's, in milliseconds.
	DeltaMs float64
	// Prevalence of the sub-optimal path on its timeline.
	Prevalence float64
}

// SuboptimalDeltas returns one sample per non-best path bucket. Timelines
// with a single path contribute nothing (paper: "trace timelines with only
// one AS path are not included").
func (tl *Timeline) SuboptimalDeltas(interval time.Duration, crit BestCriterion) []SuboptimalDelta {
	ups := tl.UniquePaths(interval)
	if len(ups) < 2 {
		return nil
	}
	best := ups[0]
	bestV := crit.value(best)
	for _, ps := range ups[1:] {
		if v := crit.value(ps); v < bestV || (v == bestV && ps.Path.Key() < best.Path.Key()) {
			best, bestV = ps, v
		}
	}
	var out []SuboptimalDelta
	for _, ps := range ups {
		if ps == best {
			continue
		}
		d := crit.value(ps) - bestV
		if d < 0 {
			d = 0
		}
		out = append(out, SuboptimalDelta{
			Lifetime:   ps.Lifetime,
			DeltaMs:    d,
			Prevalence: float64(ps.Count) / float64(len(tl.Obs)),
		})
	}
	return out
}
