package timeline

import (
	"math"
	"net/netip"
	"testing"
	"time"

	"repro/internal/core/aspath"
	"repro/internal/ipam"
	"repro/internal/trace"
)

const hour = time.Hour

// obs builds a synthetic observation.
func obs(at time.Duration, rtt float64, path ...ipam.ASN) Observation {
	return Observation{At: at, Path: aspath.Path(path), RTTms: rtt}
}

func tlOf(key trace.PairKey, os ...Observation) *Timeline {
	return &Timeline{Key: key, Obs: os}
}

func TestUniquePathsAndLifetimes(t *testing.T) {
	tl := tlOf(trace.PairKey{SrcID: 1, DstID: 2},
		obs(0, 10, 1, 2, 3),
		obs(3*hour, 11, 1, 2, 3),
		obs(6*hour, 30, 1, 4, 3),
		obs(9*hour, 10, 1, 2, 3),
	)
	ups := tl.UniquePaths(3 * hour)
	if len(ups) != 2 {
		t.Fatalf("unique paths = %d", len(ups))
	}
	if !ups[0].Path.Equal(aspath.Path{1, 2, 3}) || ups[0].Count != 3 {
		t.Errorf("dominant bucket = %+v", ups[0])
	}
	if ups[0].Lifetime != 9*hour {
		t.Errorf("dominant lifetime = %v, want 9h", ups[0].Lifetime)
	}
	if ups[1].Lifetime != 3*hour {
		t.Errorf("minor lifetime = %v", ups[1].Lifetime)
	}
}

func TestChangesAndEditDistance(t *testing.T) {
	tl := tlOf(trace.PairKey{},
		obs(0, 10, 1, 2, 3),
		obs(3*hour, 10, 1, 2, 3), // no change
		obs(6*hour, 30, 1, 4, 3), // change (substitution): dist 1
		obs(9*hour, 10, 1, 2, 3), // change back: dist 1
		obs(12*hour, 12, 1, 2),   // truncation: dist 1
	)
	chs := tl.Changes()
	if len(chs) != 3 {
		t.Fatalf("changes = %d, want 3", len(chs))
	}
	if chs[0].At != 6*hour || chs[0].Dist != 1 {
		t.Errorf("first change = %+v", chs[0])
	}
	if tl.NumChanges() != 3 {
		t.Error("NumChanges mismatch")
	}
	if n := tlOf(trace.PairKey{}, obs(0, 1, 1, 2)).NumChanges(); n != 0 {
		t.Errorf("single-obs changes = %d", n)
	}
}

func TestPrevalenceAndPopular(t *testing.T) {
	tl := tlOf(trace.PairKey{},
		obs(0, 10, 1, 2),
		obs(3*hour, 10, 1, 2),
		obs(6*hour, 10, 1, 2),
		obs(9*hour, 10, 1, 3),
	)
	prev := tl.Prevalence(3 * hour)
	if math.Abs(prev[aspath.Path{1, 2}.Key()]-0.75) > 1e-9 {
		t.Errorf("prevalence = %v", prev)
	}
	pp, p := tl.PopularPath(3 * hour)
	if !pp.Path.Equal(aspath.Path{1, 2}) || math.Abs(p-0.75) > 1e-9 {
		t.Errorf("popular = %v %v", pp.Path, p)
	}
	if pp2, p2 := tlOf(trace.PairKey{}).PopularPath(3 * hour); pp2 != nil || p2 != 0 {
		t.Error("empty timeline popular path should be nil")
	}
}

func TestBestPathCriteria(t *testing.T) {
	// Path A: baseline 10 with occasional 100 spikes; path B: steady 20.
	var os []Observation
	for i := 0; i < 20; i++ {
		rtt := 10.0
		if i >= 15 {
			rtt = 100
		}
		os = append(os, obs(time.Duration(i)*3*hour, rtt, 1, 2))
	}
	for i := 20; i < 40; i++ {
		os = append(os, obs(time.Duration(i)*3*hour, 20, 1, 3))
	}
	tl := tlOf(trace.PairKey{}, os...)
	// By P10 path A wins (baseline 10 < 20).
	if best := tl.BestPath(3*hour, ByP10); !best.Path.Equal(aspath.Path{1, 2}) {
		t.Errorf("ByP10 best = %v", best.Path)
	}
	// By P90, A's spikes push its 90th percentile above B's 20.
	if best := tl.BestPath(3*hour, ByP90); !best.Path.Equal(aspath.Path{1, 3}) {
		t.Errorf("ByP90 best = %v", best.Path)
	}
	// By StdDev the constant path wins.
	if best := tl.BestPath(3*hour, ByStd); !best.Path.Equal(aspath.Path{1, 3}) {
		t.Errorf("ByStd best = %v", best.Path)
	}
	if tlOf(trace.PairKey{}).BestPath(3*hour, ByP10) != nil {
		t.Error("empty best path should be nil")
	}
}

func TestSuboptimalDeltas(t *testing.T) {
	var os []Observation
	for i := 0; i < 8; i++ {
		os = append(os, obs(time.Duration(i)*3*hour, 10, 1, 2))
	}
	for i := 8; i < 10; i++ {
		os = append(os, obs(time.Duration(i)*3*hour, 60, 1, 3))
	}
	tl := tlOf(trace.PairKey{}, os...)
	subs := tl.SuboptimalDeltas(3*hour, ByP10)
	if len(subs) != 1 {
		t.Fatalf("suboptimal buckets = %d", len(subs))
	}
	if math.Abs(subs[0].DeltaMs-50) > 1e-9 {
		t.Errorf("delta = %v, want 50", subs[0].DeltaMs)
	}
	if subs[0].Lifetime != 6*hour {
		t.Errorf("lifetime = %v", subs[0].Lifetime)
	}
	if math.Abs(subs[0].Prevalence-0.2) > 1e-9 {
		t.Errorf("prevalence = %v", subs[0].Prevalence)
	}
	// Single-path timeline contributes nothing.
	single := tlOf(trace.PairKey{}, obs(0, 1, 1, 2), obs(3*hour, 1, 1, 2))
	if subs := single.SuboptimalDeltas(3*hour, ByP10); subs != nil {
		t.Errorf("single-path suboptimal = %v", subs)
	}
}

func TestBuilderGroupsAndTallies(t *testing.T) {
	tbl := ipam.NewTable()
	for _, e := range []struct {
		p  string
		as ipam.ASN
	}{
		{"10.0.0.0/8", 100}, {"20.0.0.0/8", 200}, {"30.0.0.0/8", 300},
	} {
		if err := tbl.Insert(netip.MustParsePrefix(e.p), e.as); err != nil {
			t.Fatal(err)
		}
	}
	b := NewBuilder(aspath.NewMapper(tbl), 3*hour)
	mk := func(at time.Duration, v6, complete bool, hops ...string) *trace.Traceroute {
		tr := &trace.Traceroute{
			SrcID: 1, DstID: 2,
			Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("30.0.0.1"),
			V6: v6, At: at, Complete: complete,
			RTT: 42 * time.Millisecond,
		}
		for _, h := range hops {
			if h == "*" {
				tr.Hops = append(tr.Hops, trace.Hop{})
			} else {
				tr.Hops = append(tr.Hops, trace.Hop{Addr: netip.MustParseAddr(h), RTT: time.Millisecond})
			}
		}
		return tr
	}
	b.Add(mk(0, false, true, "20.0.0.1", "30.0.0.1"))
	b.Add(mk(3*hour, false, true, "20.0.0.1", "*", "20.0.0.2", "30.0.0.1")) // imputed, missing IP
	b.Add(mk(6*hour, false, false))                                         // incomplete
	b.Add(mk(0, true, true, "20.0.0.1", "30.0.0.1"))                        // v6 timeline

	if b.Incomplete != 1 {
		t.Errorf("incomplete = %d", b.Incomplete)
	}
	if b.TallyV4.Total != 2 || b.TallyV6.Total != 1 {
		t.Errorf("tallies = %+v / %+v", b.TallyV4, b.TallyV6)
	}
	if b.TallyV4.MissingIP != 1 || b.TallyV4.Complete != 1 {
		t.Errorf("v4 tally = %+v", b.TallyV4)
	}
	tls := b.Timelines()
	if len(tls) != 2 {
		t.Fatalf("timelines = %d", len(tls))
	}
	v4, v6 := ByProtocol(tls)
	if len(v4) != 1 || len(v6) != 1 {
		t.Fatalf("protocol split: %d v4, %d v6", len(v4), len(v6))
	}
	if len(v4[0].Obs) != 2 {
		t.Errorf("v4 obs = %d", len(v4[0].Obs))
	}
	if v4[0].Obs[0].RTTms != 42 {
		t.Errorf("RTT ms = %v", v4[0].Obs[0].RTTms)
	}
	if _, ok := b.Timeline(trace.PairKey{SrcID: 1, DstID: 2}); !ok {
		t.Error("timeline lookup failed")
	}
}

func TestFigureReductions(t *testing.T) {
	k12 := trace.PairKey{SrcID: 1, DstID: 2}
	k21 := trace.PairKey{SrcID: 2, DstID: 1}
	fwd := tlOf(k12,
		obs(0, 10, 1, 2), obs(3*hour, 10, 1, 2), obs(6*hour, 40, 1, 3), obs(9*hour, 10, 1, 2))
	rev := tlOf(k21,
		obs(0, 10, 2, 1), obs(3*hour, 10, 2, 5, 1), obs(6*hour, 10, 2, 1), obs(9*hour, 10, 2, 1))
	tls := []*Timeline{fwd, rev}

	pp := PathsPerTimeline(tls, 3*hour)
	if len(pp) != 2 || pp[0] != 2 || pp[1] != 2 {
		t.Errorf("paths per timeline = %v", pp)
	}
	pairs := PathPairsPerServerPair(tls)
	// Combos at shared timestamps: (12,21),(12,251),(13,21),(12,21) → 3 unique.
	if len(pairs) != 1 || pairs[0] != 3 {
		t.Errorf("path pairs = %v, want [3]", pairs)
	}
	pops := PopularPrevalence(tls, 3*hour)
	if len(pops) != 2 || math.Abs(pops[0]-0.75) > 1e-9 {
		t.Errorf("popular prevalence = %v", pops)
	}
	chs := ChangesPerTimeline(tls)
	if chs[0] != 2 || chs[1] != 2 {
		t.Errorf("changes = %v", chs)
	}
	lh, dm := LifetimeDeltaSamples(tls, 3*hour, ByP10)
	if len(lh) != 2 || len(dm) != 2 {
		t.Errorf("lifetime/delta samples = %v / %v", lh, dm)
	}
	sp := SuboptimalPrevalence(tls, 3*hour, 20)
	if len(sp) != 2 || math.Abs(sp[0]-0.25) > 1e-9 {
		t.Errorf("suboptimal prevalence = %v", sp)
	}
	// Threshold above every delta: zero prevalence.
	sp100 := SuboptimalPrevalence(tls, 3*hour, 100)
	if sp100[0] != 0 {
		t.Errorf("suboptimal prevalence @100ms = %v", sp100)
	}
	frac := FractionDeltaAtLeast(tls, 3*hour, ByP10, 20, 0.2)
	if math.Abs(frac-0.5) > 1e-9 {
		t.Errorf("FractionDeltaAtLeast = %v, want 0.5", frac)
	}
	q := DeltaQuantileMs(tls, 3*hour, ByP10, 1)
	if math.Abs(q-30) > 1e-9 {
		t.Errorf("max delta = %v, want 30", q)
	}
	if DeltaQuantileMs(nil, 3*hour, ByP10, 0.5) != 0 {
		t.Error("empty delta quantile should be 0")
	}
}

func TestPathPairsRequiresBothDirections(t *testing.T) {
	k12 := trace.PairKey{SrcID: 1, DstID: 2}
	fwd := tlOf(k12, obs(0, 10, 1, 2))
	if got := PathPairsPerServerPair([]*Timeline{fwd}); len(got) != 0 {
		t.Errorf("one-direction pair should be skipped, got %v", got)
	}
}
