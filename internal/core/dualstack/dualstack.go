// Package dualstack implements the paper's Section 6 analyses: IPv4 vs
// IPv6 RTT differences between dual-stack servers (Figure 10a, including
// the same-AS-path subset), the cRTT inflation metric (Figure 10b), and
// the dual-stack latency-saving headline ("up to 50 ms by switching
// protocols").
package dualstack

import (
	"sort"
	"time"

	"repro/internal/core/aspath"
	"repro/internal/core/stats"
	"repro/internal/geo"
	"repro/internal/trace"
)

// Differences pairs IPv4 and IPv6 traceroutes taken between the same
// servers at the same time and returns RTTv4 − RTTv6 in milliseconds: once
// over all pairs, and once restricted to measurements whose inferred AS
// paths agree across protocols (the "Same AS-paths" line of Figure 10a).
// The mapper may be nil, in which case samePath is empty.
func Differences(trs []*trace.Traceroute, mapper *aspath.Mapper) (all, samePath []float64) {
	type key struct {
		src, dst int
		at       time.Duration
	}
	v4 := make(map[key]*trace.Traceroute)
	v6 := make(map[key]*trace.Traceroute)
	var keys []key
	for _, tr := range trs {
		if !tr.Complete {
			continue
		}
		k := key{tr.SrcID, tr.DstID, tr.At}
		if tr.V6 {
			if _, dup := v6[k]; !dup {
				v6[k] = tr
			}
		} else {
			if _, dup := v4[k]; !dup {
				v4[k] = tr
				keys = append(keys, k)
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.src != b.src {
			return a.src < b.src
		}
		if a.dst != b.dst {
			return a.dst < b.dst
		}
		return a.at < b.at
	})
	for _, k := range keys {
		t4 := v4[k]
		t6, ok := v6[k]
		if !ok {
			continue
		}
		diff := float64(t4.RTT-t6.RTT) / float64(time.Millisecond)
		all = append(all, diff)
		if mapper == nil {
			continue
		}
		r4 := mapper.Infer(t4)
		r6 := mapper.Infer(t6)
		if r4.Usable() && r6.Usable() && r4.Path.Equal(r6.Path) {
			samePath = append(samePath, diff)
		}
	}
	return all, samePath
}

// TailFractions returns the fraction of differences where IPv6 is faster
// than IPv4 by at least thresholdMs (diff ≥ threshold, so switching to v6
// saves that much) and vice versa — the Figure 10a tail statistics (3.7% /
// 8.5% at 50 ms in the paper).
func TailFractions(diffs []float64, thresholdMs float64) (v6Saves, v4Saves float64) {
	if len(diffs) == 0 {
		return 0, 0
	}
	hi, lo := 0, 0
	for _, d := range diffs {
		if d >= thresholdMs {
			hi++
		}
		if d <= -thresholdMs {
			lo++
		}
	}
	n := float64(len(diffs))
	return float64(hi) / n, float64(lo) / n
}

// SimilarFraction returns the fraction of differences within ±thresholdMs
// (the shaded "insignificant" band of Figure 10a, 10 ms in the paper).
func SimilarFraction(diffs []float64, thresholdMs float64) float64 {
	if len(diffs) == 0 {
		return 0
	}
	n := 0
	for _, d := range diffs {
		if d > -thresholdMs && d < thresholdMs {
			n++
		}
	}
	return float64(n) / float64(len(diffs))
}

// InflationSet holds the Figure 10b populations: RTT/cRTT per protocol,
// overall and for the US↔US and transcontinental subsets.
type InflationSet struct {
	V4All, V6All     []float64
	V4US, V6US       []float64
	V4Trans, V6Trans []float64
}

// Inflations computes per-endpoint-pair inflation: the median observed RTT
// over complete traceroutes divided by the speed-of-light cRTT between the
// endpoints' (ground truth) locations. cityOf maps a server id to its
// city.
func Inflations(trs []*trace.Traceroute, cityOf func(serverID int) (geo.City, bool)) InflationSet {
	type pairKey struct {
		src, dst int
		v6       bool
	}
	rtts := make(map[pairKey][]float64)
	var keys []pairKey
	for _, tr := range trs {
		if !tr.Complete {
			continue
		}
		k := pairKey{tr.SrcID, tr.DstID, tr.V6}
		if _, seen := rtts[k]; !seen {
			keys = append(keys, k)
		}
		rtts[k] = append(rtts[k], float64(tr.RTT)/float64(time.Millisecond))
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.src != b.src {
			return a.src < b.src
		}
		if a.dst != b.dst {
			return a.dst < b.dst
		}
		return !a.v6 && b.v6
	})

	var set InflationSet
	for _, k := range keys {
		ca, oka := cityOf(k.src)
		cb, okb := cityOf(k.dst)
		if !oka || !okb {
			continue
		}
		crtt := float64(geo.CRTT(ca, cb)) / float64(time.Millisecond)
		if crtt <= 0 {
			continue // colocated endpoints have no defined inflation
		}
		infl := stats.Median(rtts[k]) / crtt
		if k.v6 {
			set.V6All = append(set.V6All, infl)
		} else {
			set.V4All = append(set.V4All, infl)
		}
		switch {
		case ca.Country == "US" && cb.Country == "US":
			if k.v6 {
				set.V6US = append(set.V6US, infl)
			} else {
				set.V4US = append(set.V4US, infl)
			}
		case geo.Transcontinental(ca, cb):
			if k.v6 {
				set.V6Trans = append(set.V6Trans, infl)
			} else {
				set.V4Trans = append(set.V4Trans, infl)
			}
		}
	}
	return set
}
