package dualstack

import (
	"math"
	"net/netip"
	"testing"
	"time"

	"repro/internal/core/aspath"
	"repro/internal/geo"
	"repro/internal/ipam"
	"repro/internal/trace"
)

func mk(src, dst int, v6 bool, at time.Duration, rttMs float64, complete bool) *trace.Traceroute {
	return &trace.Traceroute{
		SrcID: src, DstID: dst, V6: v6, At: at,
		Complete: complete,
		RTT:      time.Duration(rttMs * float64(time.Millisecond)),
	}
}

func TestDifferencesPairsSameTime(t *testing.T) {
	trs := []*trace.Traceroute{
		mk(1, 2, false, 0, 100, true),
		mk(1, 2, true, 0, 80, true), // diff +20 (v6 faster)
		mk(1, 2, false, 3*time.Hour, 50, true),
		mk(1, 2, true, 3*time.Hour, 90, true), // diff -40
		mk(1, 2, false, 6*time.Hour, 70, true),
		// no v6 partner at 6h
		mk(3, 4, false, 0, 60, false), // incomplete: ignored
		mk(3, 4, true, 0, 60, true),
	}
	all, same := Differences(trs, nil)
	if len(all) != 2 {
		t.Fatalf("diffs = %v", all)
	}
	if math.Abs(all[0]-20) > 1e-9 || math.Abs(all[1]+40) > 1e-9 {
		t.Errorf("diffs = %v, want [20 -40]", all)
	}
	if same != nil {
		t.Error("samePath should be empty without a mapper")
	}
}

func TestDifferencesSamePathSubset(t *testing.T) {
	tbl := ipam.NewTable()
	for _, e := range []struct {
		p  string
		as ipam.ASN
	}{
		{"10.0.0.0/8", 100}, {"20.0.0.0/8", 200}, {"30.0.0.0/8", 300}, {"40.0.0.0/8", 400},
		{"2400::/16", 100}, {"2401::/16", 200}, {"2402::/16", 300}, {"2403::/16", 400},
	} {
		if err := tbl.Insert(netip.MustParsePrefix(e.p), e.as); err != nil {
			t.Fatal(err)
		}
	}
	m := aspath.NewMapper(tbl)
	t4 := mk(1, 2, false, 0, 100, true)
	t4.Src = netip.MustParseAddr("10.0.0.1")
	t4.Hops = []trace.Hop{
		{Addr: netip.MustParseAddr("20.0.0.1")},
		{Addr: netip.MustParseAddr("30.0.0.1")},
	}
	t6 := mk(1, 2, true, 0, 90, true)
	t6.Src = netip.MustParseAddr("2400::1")
	t6.Hops = []trace.Hop{
		{Addr: netip.MustParseAddr("2401::1")},
		{Addr: netip.MustParseAddr("2402::1")},
	}
	// Second measurement at 3h where the v6 AS path differs (via AS400).
	t4b := mk(1, 2, false, 3*time.Hour, 100, true)
	t4b.Src = t4.Src
	t4b.Hops = t4.Hops
	t6b := mk(1, 2, true, 3*time.Hour, 90, true)
	t6b.Src = t6.Src
	t6b.Hops = []trace.Hop{
		{Addr: netip.MustParseAddr("2403::1")},
		{Addr: netip.MustParseAddr("2402::1")},
	}
	all, same := Differences([]*trace.Traceroute{t4, t6, t4b, t6b}, m)
	if len(all) != 2 {
		t.Fatalf("all = %v", all)
	}
	if len(same) != 1 || math.Abs(same[0]-10) > 1e-9 {
		t.Errorf("samePath = %v, want [10]", same)
	}
}

func TestTailFractionsAndSimilar(t *testing.T) {
	diffs := []float64{60, 55, -70, 5, -5, 0, 3, -2, 49, -49}
	v6Saves, v4Saves := TailFractions(diffs, 50)
	if math.Abs(v6Saves-0.2) > 1e-9 {
		t.Errorf("v6Saves = %v", v6Saves)
	}
	if math.Abs(v4Saves-0.1) > 1e-9 {
		t.Errorf("v4Saves = %v", v4Saves)
	}
	sim := SimilarFraction(diffs, 10)
	if math.Abs(sim-0.5) > 1e-9 {
		t.Errorf("similar = %v", sim)
	}
	if a, b := TailFractions(nil, 50); a != 0 || b != 0 {
		t.Error("empty tails should be 0")
	}
	if SimilarFraction(nil, 10) != 0 {
		t.Error("empty similar should be 0")
	}
}

func TestInflations(t *testing.T) {
	ny, _ := geo.CityByName("New York")
	la, _ := geo.CityByName("Los Angeles")
	tokyo, _ := geo.CityByName("Tokyo")
	cities := map[int]geo.City{1: ny, 2: la, 3: tokyo}
	cityOf := func(id int) (geo.City, bool) {
		c, ok := cities[id]
		return c, ok
	}
	// NY-LA cRTT ~26.3ms. Median RTT 79 → inflation ~3.
	trs := []*trace.Traceroute{
		mk(1, 2, false, 0, 79, true),
		mk(1, 2, false, 3*time.Hour, 79, true),
		mk(1, 2, true, 0, 105, true),
		// NY-Tokyo (transcontinental): cRTT ~72ms; RTT 216 → ~3.
		mk(1, 3, false, 0, 216, true),
		// Unknown server id: skipped.
		mk(9, 2, false, 0, 50, true),
		// Incomplete: skipped.
		mk(2, 1, false, 0, 50, false),
	}
	set := Inflations(trs, cityOf)
	if len(set.V4All) != 2 || len(set.V6All) != 1 {
		t.Fatalf("all sizes: v4=%d v6=%d", len(set.V4All), len(set.V6All))
	}
	if set.V4All[0] < 2.5 || set.V4All[0] > 3.5 {
		t.Errorf("NY-LA v4 inflation = %v, want ~3", set.V4All[0])
	}
	if len(set.V4US) != 1 || len(set.V6US) != 1 {
		t.Errorf("US subset sizes: %d/%d", len(set.V4US), len(set.V6US))
	}
	if len(set.V4Trans) != 1 {
		t.Errorf("transcontinental subset = %d", len(set.V4Trans))
	}
	if set.V4Trans[0] < 2.5 || set.V4Trans[0] > 3.5 {
		t.Errorf("NY-Tokyo inflation = %v", set.V4Trans[0])
	}
}

func TestInflationsColocatedSkipped(t *testing.T) {
	ny, _ := geo.CityByName("New York")
	cityOf := func(id int) (geo.City, bool) { return ny, true }
	set := Inflations([]*trace.Traceroute{mk(1, 2, false, 0, 5, true)}, cityOf)
	if len(set.V4All) != 0 {
		t.Error("colocated pair should be skipped (cRTT = 0)")
	}
}

func TestDiffCollectorMatchesBatch(t *testing.T) {
	trs := []*trace.Traceroute{
		mk(1, 2, false, 0, 100, true),
		mk(1, 2, true, 0, 80, true),
		mk(1, 2, true, 3*time.Hour, 90, true), // v6 first this round
		mk(1, 2, false, 3*time.Hour, 50, true),
		mk(1, 2, false, 6*time.Hour, 70, true), // unpaired
		mk(3, 4, false, 0, 60, false),          // incomplete
	}
	c := NewDiffCollector(nil)
	for _, tr := range trs {
		c.Add(tr)
	}
	batch, _ := Differences(trs, nil)
	if len(c.All) != len(batch) {
		t.Fatalf("stream %v vs batch %v", c.All, batch)
	}
	// Order within may differ; compare as sets.
	seen := map[float64]int{}
	for _, d := range batch {
		seen[d]++
	}
	for _, d := range c.All {
		seen[d]--
	}
	for d, n := range seen {
		if n != 0 {
			t.Errorf("diff %v count mismatch %d", d, n)
		}
	}
}

func TestInflationCollectorMatchesBatch(t *testing.T) {
	ny, _ := geo.CityByName("New York")
	la, _ := geo.CityByName("Los Angeles")
	cities := map[int]geo.City{1: ny, 2: la}
	cityOf := func(id int) (geo.City, bool) {
		c, ok := cities[id]
		return c, ok
	}
	trs := []*trace.Traceroute{
		mk(1, 2, false, 0, 79, true),
		mk(1, 2, false, 3*time.Hour, 81, true),
		mk(2, 1, true, 0, 100, true),
	}
	c := NewInflationCollector()
	for _, tr := range trs {
		c.Add(tr)
	}
	got := c.Set(cityOf)
	want := Inflations(trs, cityOf)
	if len(got.V4All) != len(want.V4All) || len(got.V6All) != len(want.V6All) {
		t.Fatalf("set sizes differ: %+v vs %+v", got, want)
	}
	for i := range want.V4All {
		if math.Abs(got.V4All[i]-want.V4All[i]) > 1e-9 {
			t.Errorf("v4 inflation %d: %v vs %v", i, got.V4All[i], want.V4All[i])
		}
	}
}
