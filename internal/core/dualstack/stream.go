package dualstack

import (
	"sort"
	"time"

	"repro/internal/core/aspath"
	"repro/internal/core/stats"
	"repro/internal/geo"
	"repro/internal/trace"
)

// DiffCollector computes Figure 10a differences incrementally so a
// campaign's records never need to be retained. It relies on the v4 and v6
// measurements of a pair arriving within the same round (any order).
type DiffCollector struct {
	// Mapper enables the same-AS-path subset; nil disables it.
	Mapper *aspath.Mapper

	All      []float64
	SamePath []float64

	pending map[[2]int]pendingDiff
}

type pendingDiff struct {
	at      time.Duration
	v6      bool
	rttMs   float64
	pathKey string
	usable  bool
}

// NewDiffCollector returns an empty collector.
func NewDiffCollector(m *aspath.Mapper) *DiffCollector {
	return &DiffCollector{Mapper: m, pending: make(map[[2]int]pendingDiff)}
}

// Add consumes one traceroute.
func (c *DiffCollector) Add(tr *trace.Traceroute) {
	if !tr.Complete {
		return
	}
	cur := pendingDiff{
		at:    tr.At,
		v6:    tr.V6,
		rttMs: float64(tr.RTT) / float64(time.Millisecond),
	}
	if c.Mapper != nil {
		r := c.Mapper.Infer(tr)
		cur.usable = r.Usable()
		if cur.usable {
			cur.pathKey = r.Path.Key()
		}
	}
	k := [2]int{tr.SrcID, tr.DstID}
	prev, ok := c.pending[k]
	if !ok || prev.at != tr.At || prev.v6 == tr.V6 {
		c.pending[k] = cur
		return
	}
	delete(c.pending, k)
	v4, v6 := prev, cur
	if v4.v6 {
		v4, v6 = v6, v4
	}
	diff := v4.rttMs - v6.rttMs
	c.All = append(c.All, diff)
	if c.Mapper != nil && v4.usable && v6.usable && v4.pathKey == v6.pathKey {
		c.SamePath = append(c.SamePath, diff)
	}
}

// InflationCollector accumulates per-pair RTTs for Figure 10b without
// retaining records.
type InflationCollector struct {
	rtts map[inflKey][]float64
	keys []inflKey
}

type inflKey struct {
	src, dst int
	v6       bool
}

// NewInflationCollector returns an empty collector.
func NewInflationCollector() *InflationCollector {
	return &InflationCollector{rtts: make(map[inflKey][]float64)}
}

// Add consumes one traceroute.
func (c *InflationCollector) Add(tr *trace.Traceroute) {
	if !tr.Complete {
		return
	}
	k := inflKey{tr.SrcID, tr.DstID, tr.V6}
	if _, seen := c.rtts[k]; !seen {
		c.keys = append(c.keys, k)
	}
	c.rtts[k] = append(c.rtts[k], float64(tr.RTT)/float64(time.Millisecond))
}

// Set computes the Figure 10b populations from the collected RTTs.
func (c *InflationCollector) Set(cityOf func(serverID int) (geo.City, bool)) InflationSet {
	keys := append([]inflKey(nil), c.keys...)
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.src != b.src {
			return a.src < b.src
		}
		if a.dst != b.dst {
			return a.dst < b.dst
		}
		return !a.v6 && b.v6
	})
	var set InflationSet
	for _, k := range keys {
		ca, oka := cityOf(k.src)
		cb, okb := cityOf(k.dst)
		if !oka || !okb {
			continue
		}
		crtt := float64(geo.CRTT(ca, cb)) / float64(time.Millisecond)
		if crtt <= 0 {
			continue
		}
		infl := stats.Median(c.rtts[k]) / crtt
		if k.v6 {
			set.V6All = append(set.V6All, infl)
		} else {
			set.V4All = append(set.V4All, infl)
		}
		switch {
		case ca.Country == "US" && cb.Country == "US":
			if k.v6 {
				set.V6US = append(set.V6US, infl)
			} else {
				set.V4US = append(set.V4US, infl)
			}
		case geo.Transcontinental(ca, cb):
			if k.v6 {
				set.V6Trans = append(set.V6Trans, infl)
			} else {
				set.V4Trans = append(set.V4Trans, infl)
			}
		}
	}
	return set
}
