// Package changepoint detects level shifts in RTT time series — the
// Figure 1 phenomenon ("an obvious feature is level shifts between periods
// of a baseline RTT"). The detector is binary segmentation over a
// squared-error cost with a linear penalty per split, which is O(n log n)
// with prefix sums and robust once spikes are suppressed by a median
// filter.
//
// Detected shift times can be cross-checked against AS-path change times:
// the paper observed that "at each of the level shifts there was a change
// in the AS path in one, or both, directions".
package changepoint

import (
	"math"
	"sort"
)

// MedianFilter returns the series filtered by a sliding median of the
// given (odd) window, which removes the isolated spikes "typical of
// repeated measurements" while preserving level shifts.
func MedianFilter(xs []float64, window int) []float64 {
	if window < 3 {
		window = 3
	}
	if window%2 == 0 {
		window++
	}
	half := window / 2
	out := make([]float64, len(xs))
	buf := make([]float64, 0, window)
	for i := range xs {
		lo, hi := i-half, i+half+1
		if lo < 0 {
			lo = 0
		}
		if hi > len(xs) {
			hi = len(xs)
		}
		buf = append(buf[:0], xs[lo:hi]...)
		sort.Float64s(buf)
		out[i] = buf[len(buf)/2]
	}
	return out
}

// prefixSums enables O(1) segment cost queries.
type prefixSums struct {
	s, s2 []float64 // cumulative sum and sum of squares
}

func newPrefixSums(xs []float64) *prefixSums {
	p := &prefixSums{s: make([]float64, len(xs)+1), s2: make([]float64, len(xs)+1)}
	for i, x := range xs {
		p.s[i+1] = p.s[i] + x
		p.s2[i+1] = p.s2[i] + x*x
	}
	return p
}

// cost returns the squared error of the segment [i, j) around its mean.
func (p *prefixSums) cost(i, j int) float64 {
	n := float64(j - i)
	if n <= 0 {
		return 0
	}
	sum := p.s[j] - p.s[i]
	sum2 := p.s2[j] - p.s2[i]
	return sum2 - sum*sum/n
}

// Detect returns the sorted indices at which the series' level shifts.
// A split is accepted when it reduces the squared error by more than
// penalty; minSegment bounds the shortest segment. A non-positive penalty
// selects a BIC-style default (2·σ²·log n with σ estimated from first
// differences, robust to the level shifts themselves).
func Detect(xs []float64, minSegment int, penalty float64) []int {
	n := len(xs)
	if minSegment < 1 {
		minSegment = 1
	}
	// Guard as minSegment > n/2 rather than n < 2*minSegment: the product
	// overflows for huge minSegment values, letting a degenerate call
	// through to negative prefix-sum indexing.
	if n < 2 || minSegment > n/2 {
		return nil
	}
	if penalty <= 0 {
		penalty = defaultPenalty(xs)
	}
	p := newPrefixSums(xs)
	var cuts []int
	var segment func(lo, hi int)
	segment = func(lo, hi int) {
		if hi-lo < 2*minSegment {
			return
		}
		base := p.cost(lo, hi)
		bestGain, bestAt := 0.0, -1
		for t := lo + minSegment; t <= hi-minSegment; t++ {
			gain := base - p.cost(lo, t) - p.cost(t, hi)
			if gain > bestGain {
				bestGain, bestAt = gain, t
			}
		}
		if bestAt < 0 || bestGain <= penalty {
			return
		}
		segment(lo, bestAt)
		cuts = append(cuts, bestAt)
		segment(bestAt, hi)
	}
	segment(0, n)
	sort.Ints(cuts)
	return cuts
}

// defaultPenalty estimates the noise variance from the median absolute
// first difference (immune to level shifts, which affect only a few
// differences) and returns the BIC-style 2·σ²·log n.
func defaultPenalty(xs []float64) float64 {
	n := len(xs)
	if n < 3 {
		return math.Inf(1)
	}
	diffs := make([]float64, 0, n-1)
	for i := 1; i < n; i++ {
		diffs = append(diffs, math.Abs(xs[i]-xs[i-1]))
	}
	sort.Float64s(diffs)
	mad := diffs[len(diffs)/2]
	// For Gaussian noise, E|X−Y| = 2σ/√π ⇒ σ ≈ mad·0.8862; first
	// differences double the variance, so σ ≈ mad·0.8862/√2 ≈ mad·0.6267.
	sigma := mad * 0.6267
	if sigma == 0 {
		sigma = 1e-9
	}
	return 2 * sigma * sigma * math.Log(float64(n)) * 6
}

// DetectRobust median-filters the series before segmentation but estimates
// the penalty from the raw series: filtering suppresses the paper's
// isolated RTT spikes, yet it also correlates neighboring samples, which
// would wreck a noise estimate taken after the fact.
func DetectRobust(xs []float64, minSegment, window int) []int {
	penalty := defaultPenalty(xs)
	return Detect(MedianFilter(xs, window), minSegment, penalty)
}

// Segments converts cut indices into [start, end) segment bounds over a
// series of length n, with per-segment means of xs.
type Segment struct {
	Start, End int
	Mean       float64
}

// Split returns the segments induced by the cuts.
func Split(xs []float64, cuts []int) []Segment {
	bounds := append([]int{0}, cuts...)
	bounds = append(bounds, len(xs))
	var out []Segment
	for i := 0; i+1 < len(bounds); i++ {
		lo, hi := bounds[i], bounds[i+1]
		if hi <= lo {
			continue
		}
		sum := 0.0
		for _, x := range xs[lo:hi] {
			sum += x
		}
		out = append(out, Segment{Start: lo, End: hi, Mean: sum / float64(hi-lo)})
	}
	return out
}

// MatchRate returns the fraction of detected cut indices that fall within
// tol of some reference index — used to check detected RTT level shifts
// against known route-change times.
func MatchRate(detected, reference []int, tol int) float64 {
	if len(detected) == 0 {
		return 0
	}
	hit := 0
	for _, d := range detected {
		for _, r := range reference {
			if abs(d-r) <= tol {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(len(detected))
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
