package changepoint

import (
	"math"
	"math/rand"
	"testing"
)

// steps builds a noisy piecewise-constant series.
func steps(rng *rand.Rand, lengths []int, levels []float64, sigma float64) []float64 {
	var out []float64
	for i, n := range lengths {
		for j := 0; j < n; j++ {
			out = append(out, levels[i]+rng.NormFloat64()*sigma)
		}
	}
	return out
}

func TestDetectSingleShift(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := steps(rng, []int{200, 200}, []float64{50, 150}, 2)
	cuts := Detect(xs, 10, 0)
	if len(cuts) != 1 {
		t.Fatalf("cuts = %v, want exactly one", cuts)
	}
	if cuts[0] < 195 || cuts[0] > 205 {
		t.Errorf("cut at %d, want ~200", cuts[0])
	}
}

func TestDetectMultipleShifts(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := steps(rng, []int{150, 100, 200, 120}, []float64{60, 160, 55, 90}, 3)
	cuts := Detect(xs, 10, 0)
	if len(cuts) != 3 {
		t.Fatalf("cuts = %v, want 3", cuts)
	}
	want := []int{150, 250, 450}
	for i, w := range want {
		if abs(cuts[i]-w) > 8 {
			t.Errorf("cut %d at %d, want ~%d", i, cuts[i], w)
		}
	}
}

func TestDetectNoShiftOnNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = 80 + rng.NormFloat64()*4
	}
	if cuts := Detect(xs, 10, 0); len(cuts) != 0 {
		t.Errorf("noise-only series produced cuts %v", cuts)
	}
}

func TestDetectSpikesNotShifts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 600)
	for i := range xs {
		xs[i] = 80 + rng.NormFloat64()
		if rng.Float64() < 0.02 {
			xs[i] += 80 // the paper's isolated spikes
		}
	}
	if cuts := DetectRobust(xs, 10, 5); len(cuts) != 0 {
		t.Errorf("spiky-but-level series produced cuts %v after median filter", cuts)
	}
}

func TestDetectShiftSurvivesMedianFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := steps(rng, []int{300, 300}, []float64{60, 170}, 2)
	for i := range xs {
		if rng.Float64() < 0.02 {
			xs[i] += 90
		}
	}
	cuts := DetectRobust(xs, 10, 5)
	if len(cuts) != 1 || abs(cuts[0]-300) > 8 {
		t.Errorf("cuts = %v, want one near 300", cuts)
	}
}

func TestDetectEdgeCases(t *testing.T) {
	if cuts := Detect(nil, 5, 0); cuts != nil {
		t.Error("nil input should yield nil")
	}
	if cuts := Detect([]float64{1, 2}, 5, 0); cuts != nil {
		t.Error("short input should yield nil")
	}
	// Constant series.
	xs := make([]float64, 100)
	if cuts := Detect(xs, 5, 0); len(cuts) != 0 {
		t.Errorf("constant series produced cuts %v", cuts)
	}
	// Explicit huge penalty suppresses everything.
	rng := rand.New(rand.NewSource(6))
	shifted := steps(rng, []int{50, 50}, []float64{0, 100}, 1)
	if cuts := Detect(shifted, 5, math.Inf(1)); len(cuts) != 0 {
		t.Error("infinite penalty should suppress cuts")
	}
}

func TestSplit(t *testing.T) {
	xs := []float64{1, 1, 1, 5, 5, 5}
	segs := Split(xs, []int{3})
	if len(segs) != 2 {
		t.Fatalf("segments = %v", segs)
	}
	if segs[0].Mean != 1 || segs[1].Mean != 5 {
		t.Errorf("means = %v, %v", segs[0].Mean, segs[1].Mean)
	}
	if segs[0].Start != 0 || segs[0].End != 3 || segs[1].Start != 3 || segs[1].End != 6 {
		t.Errorf("bounds wrong: %+v", segs)
	}
	// No cuts: one segment.
	if segs := Split(xs, nil); len(segs) != 1 {
		t.Errorf("no-cut split = %v", segs)
	}
}

func TestMedianFilter(t *testing.T) {
	xs := []float64{1, 1, 100, 1, 1}
	got := MedianFilter(xs, 3)
	if got[2] != 1 {
		t.Errorf("spike not removed: %v", got)
	}
	// Even/small windows are normalized without panicking.
	_ = MedianFilter(xs, 4)
	_ = MedianFilter(xs, 1)
	if len(MedianFilter(nil, 5)) != 0 {
		t.Error("empty filter should be empty")
	}
}

func TestMatchRate(t *testing.T) {
	if got := MatchRate([]int{100, 200}, []int{101, 500}, 3); got != 0.5 {
		t.Errorf("match rate = %v, want 0.5", got)
	}
	if got := MatchRate(nil, []int{1}, 3); got != 0 {
		t.Error("empty detected should be 0")
	}
	if got := MatchRate([]int{5}, []int{5}, 0); got != 1 {
		t.Error("exact match at tol 0 should count")
	}
}

// TestDetectDegenerateInputs pins Detect and DetectRobust against the
// degenerate parameter space: non-positive and oversized minSegment values
// (including ones whose doubling overflows int) and all-equal series must
// return empty instead of panicking or misindexing.
func TestDetectDegenerateInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shifted := steps(rng, []int{60, 60}, []float64{10, 90}, 1)
	equal := make([]float64, 50)
	for i := range equal {
		equal[i] = 42
	}
	cases := []struct {
		name       string
		xs         []float64
		minSegment int
		wantCuts   bool
	}{
		{"empty series", nil, 5, false},
		{"single sample", []float64{3}, 1, false},
		{"zero minSegment", shifted, 0, true},
		{"negative minSegment", shifted, -5, true},
		{"minSegment equals length", shifted, len(shifted), false},
		{"minSegment beyond length", shifted, len(shifted) + 1, false},
		{"minSegment overflows doubling", shifted, math.MaxInt, false},
		{"all-equal series", equal, 5, false},
		{"all-equal huge minSegment", equal, math.MaxInt - 1, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cuts := Detect(tc.xs, tc.minSegment, 0)
			if tc.wantCuts && len(cuts) == 0 {
				t.Errorf("Detect(%s) found no cuts, want at least one", tc.name)
			}
			if !tc.wantCuts && len(cuts) != 0 {
				t.Errorf("Detect(%s) = %v, want none", tc.name, cuts)
			}
			robust := DetectRobust(tc.xs, tc.minSegment, 5)
			if !tc.wantCuts && len(robust) != 0 {
				t.Errorf("DetectRobust(%s) = %v, want none", tc.name, robust)
			}
		})
	}
}
