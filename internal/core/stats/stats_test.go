package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPercentileBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 10}, {50, 5.5}, {10, 1.9}, {90, 9.1}, {25, 3.25},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
	if got := Percentile([]float64{7}, 50); got != 7 {
		t.Errorf("single-element percentile = %v", got)
	}
	// Input order must not matter (Percentile copies).
	shuffled := []float64{5, 1, 9, 3, 7, 2, 10, 4, 8, 6}
	if got := Percentile(shuffled, 50); !almost(got, 5.5, 1e-9) {
		t.Errorf("shuffled median = %v", got)
	}
	if shuffled[0] != 5 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileMonotonicProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(xs, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanStdDevMedian(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almost(got, 5, 1e-9) {
		t.Errorf("mean = %v", got)
	}
	if got := StdDev(xs); !almost(got, 2, 1e-9) {
		t.Errorf("stddev = %v", got)
	}
	if got := Median(xs); !almost(got, 4.5, 1e-9) {
		t.Errorf("median = %v", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(StdDev(nil)) {
		t.Error("empty mean/stddev should be NaN")
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if got := Pearson(x, y); !almost(got, 1, 1e-12) {
		t.Errorf("perfect correlation = %v", got)
	}
	yneg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(x, yneg); !almost(got, -1, 1e-12) {
		t.Errorf("perfect anticorrelation = %v", got)
	}
	if got := Pearson(x, []float64{3, 3, 3, 3, 3}); got != 0 {
		t.Errorf("constant series correlation = %v, want 0", got)
	}
	if !math.IsNaN(Pearson(x, []float64{1})) {
		t.Error("mismatched lengths should be NaN")
	}
	// Uncorrelated noise: near zero.
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, 5000)
	b := make([]float64, 5000)
	for i := range a {
		a[i], b[i] = rng.NormFloat64(), rng.NormFloat64()
	}
	if got := Pearson(a, b); math.Abs(got) > 0.05 {
		t.Errorf("independent noise correlation = %v", got)
	}
}

func TestPearsonShiftedDiurnal(t *testing.T) {
	// A segment time series that carries the end-to-end diurnal signal
	// must correlate strongly — the §5.2 localization criterion.
	n := 672
	sig := make([]float64, n)
	seg := make([]float64, n)
	rng := rand.New(rand.NewSource(2))
	for i := range sig {
		s := math.Max(0, math.Sin(2*math.Pi*float64(i)/96))
		sig[i] = 20*s + rng.NormFloat64()
		seg[i] = 20*s + rng.NormFloat64()*2
	}
	if got := Pearson(sig, seg); got < 0.9 {
		t.Errorf("shared diurnal correlation = %v, want > 0.9", got)
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3, 10})
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.2}, {2, 0.6}, {2.5, 0.6}, {3, 0.8}, {10, 1}, {100, 1},
	}
	for _, c := range cases {
		if got := e.Eval(c.x); !almost(got, c.want, 1e-12) {
			t.Errorf("Eval(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if got := e.Quantile(0.5); got != 2 {
		t.Errorf("Quantile(0.5) = %v", got)
	}
	if e.Len() != 5 {
		t.Errorf("Len = %d", e.Len())
	}
	pts := e.Points(3)
	if len(pts) != 3 || pts[0][0] != 1 || pts[2][0] != 10 || pts[2][1] != 1 {
		t.Errorf("Points = %v", pts)
	}
	if math.IsNaN(e.Eval(5)) {
		t.Error("unexpected NaN")
	}
	empty := NewECDF(nil)
	if !math.IsNaN(empty.Eval(1)) {
		t.Error("empty ECDF should eval NaN")
	}
	if empty.Points(5) != nil {
		t.Error("empty ECDF points should be nil")
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		e := NewECDF(xs)
		prev := -1.0
		for _, x := range xs {
			v := e.Eval(x)
			if v < 0 || v > 1 {
				return false
			}
			_ = prev
		}
		// F is monotone along sorted xs.
		s := append([]float64(nil), xs...)
		for i := 1; i < len(s); i++ {
			if e.Eval(s[i]) < e.Eval(s[i-1]) && s[i] >= s[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecileHeatmap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 10000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 100
		ys[i] = rng.ExpFloat64() * 10
	}
	h, err := DecileHeatmap(xs, ys, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.XEdges) != 11 || len(h.YEdges) != 11 {
		t.Fatalf("edges: %d x, %d y", len(h.XEdges), len(h.YEdges))
	}
	// All cells sum to ~100%.
	total := 0.0
	for _, row := range h.Cells {
		for _, v := range row {
			if v < 0 {
				t.Fatal("negative cell")
			}
			total += v
		}
	}
	if !almost(total, 100, 1e-6) {
		t.Errorf("cells sum to %v, want 100", total)
	}
	// With independent marginals each cell holds ~1%.
	for yi, row := range h.Cells {
		for xi, v := range row {
			if v < 0.3 || v > 2.5 {
				t.Errorf("cell[%d][%d] = %.2f%%, want ~1%%", yi, xi, v)
			}
		}
	}
	// Row sums ~10% each.
	for i, rs := range h.RowSums() {
		if rs < 8 || rs > 12 {
			t.Errorf("row %d sum = %.1f%%, want ~10%%", i, rs)
		}
	}
}

func TestDecileHeatmapDuplicateEdges(t *testing.T) {
	// Half the mass at a single value: decile edges collapse and must be
	// merged (like the paper's 3-hour minimum lifetime column).
	xs := make([]float64, 1000)
	ys := make([]float64, 1000)
	rng := rand.New(rand.NewSource(4))
	for i := range xs {
		if i < 500 {
			xs[i] = 3
		} else {
			xs[i] = 3 + rng.Float64()*100
		}
		ys[i] = rng.Float64()
	}
	h, err := DecileHeatmap(xs, ys, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.XEdges) >= 11 {
		t.Errorf("expected merged X edges, got %d", len(h.XEdges))
	}
	total := 0.0
	for _, row := range h.Cells {
		for _, v := range row {
			total += v
		}
	}
	if !almost(total, 100, 1e-6) {
		t.Errorf("cells sum to %v", total)
	}
}

func TestDecileHeatmapErrors(t *testing.T) {
	if _, err := DecileHeatmap([]float64{1}, []float64{1, 2}, 10); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := DecileHeatmap(nil, nil, 10); err == nil {
		t.Error("empty input should error")
	}
	if _, err := DecileHeatmap([]float64{1, 2}, []float64{1, 2}, 1); err == nil {
		t.Error("nbins < 2 should error")
	}
	// Constant sample must not panic.
	h, err := DecileHeatmap([]float64{5, 5, 5}, []float64{1, 1, 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Cells[0][0] < 99 {
		t.Error("constant sample should land in one cell")
	}
}

func TestKDE(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	grid := Grid(-4, 4, 81)
	dens := KDE(xs, 0, grid)
	// Peak near zero, roughly the standard normal peak (0.399).
	peakIdx := 0
	for i, d := range dens {
		if d > dens[peakIdx] {
			peakIdx = i
		}
	}
	if math.Abs(grid[peakIdx]) > 0.3 {
		t.Errorf("KDE peak at %v, want ~0", grid[peakIdx])
	}
	if dens[peakIdx] < 0.3 || dens[peakIdx] > 0.5 {
		t.Errorf("KDE peak density = %v, want ~0.4", dens[peakIdx])
	}
	// Integrates to ~1.
	integral := 0.0
	for i := 1; i < len(grid); i++ {
		integral += (dens[i] + dens[i-1]) / 2 * (grid[i] - grid[i-1])
	}
	if !almost(integral, 1, 0.05) {
		t.Errorf("KDE integral = %v", integral)
	}
	// Empty input: zeros.
	for _, d := range KDE(nil, 0, grid) {
		if d != 0 {
			t.Fatal("empty KDE should be zero")
		}
	}
}

func TestGrid(t *testing.T) {
	g := Grid(0, 10, 11)
	if len(g) != 11 || g[0] != 0 || g[10] != 10 || g[5] != 5 {
		t.Errorf("Grid = %v", g)
	}
	if g := Grid(1, 2, 1); len(g) != 1 || g[0] != 1 {
		t.Errorf("degenerate grid = %v", g)
	}
}
