// Package stats provides the statistical machinery the paper's analyses
// rest on: percentiles, empirical CDFs, decile heat maps (Figures 4 and 5),
// kernel density estimates (Figure 9), and the Pearson correlation used to
// localize congestion (§5.2).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between order statistics. It returns NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 || math.IsNaN(p) {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

// PercentileSorted is Percentile over an already-sorted sample, avoiding
// the copy.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	return percentileSorted(sorted, p)
}

func percentileSorted(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation (NaN for empty input).
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Pearson returns the Pearson correlation coefficient of two equal-length
// series. It returns 0 when either series is constant, and NaN for empty
// or mismatched input.
func Pearson(x, y []float64) float64 {
	if len(x) == 0 || len(x) != len(y) {
		return math.NaN()
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from a sample (copied and sorted).
func NewECDF(xs []float64) ECDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return ECDF{sorted: s}
}

// Len returns the sample size.
func (e ECDF) Len() int { return len(e.sorted) }

// Eval returns P(X ≤ x).
func (e ECDF) Eval(x float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(e.sorted, x)
	// Advance past equal values (SearchFloat64s returns the first index).
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1).
func (e ECDF) Quantile(q float64) float64 {
	return PercentileSorted(e.sorted, q*100)
}

// Points returns up to n (x, F(x)) pairs suitable for plotting or printing
// an ECDF curve.
func (e ECDF) Points(n int) [][2]float64 {
	if len(e.sorted) == 0 || n <= 0 {
		return nil
	}
	if n > len(e.sorted) {
		n = len(e.sorted)
	}
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(e.sorted) - 1) / max(n-1, 1)
		x := e.sorted[idx]
		out = append(out, [2]float64{x, float64(idx+1) / float64(len(e.sorted))})
	}
	return out
}

// Heatmap is a 2-D binned distribution; Cells[yi][xi] holds the fraction
// (in percent) of points falling into that cell. Edges are half-open
// [e[i], e[i+1]) bins, matching the paper's Figure 4/5 presentation.
type Heatmap struct {
	XEdges, YEdges []float64
	Cells          [][]float64
	N              int
}

// DecileHeatmap bins (x, y) points into cells bounded by the deciles of
// the marginal distributions. Duplicate decile edges are merged, so a cell
// can represent more than one decile (the paper's first Figure 4 column
// spans two deciles of AS-path lifetime).
func DecileHeatmap(xs, ys []float64, nbins int) (*Heatmap, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("stats: empty input")
	}
	if nbins < 2 {
		return nil, fmt.Errorf("stats: nbins must be >= 2")
	}
	xe := quantileEdges(xs, nbins)
	ye := quantileEdges(ys, nbins)
	h := &Heatmap{XEdges: xe, YEdges: ye, N: len(xs)}
	h.Cells = make([][]float64, len(ye)-1)
	for i := range h.Cells {
		h.Cells[i] = make([]float64, len(xe)-1)
	}
	inc := 100.0 / float64(len(xs))
	for i := range xs {
		xi := binIndex(xe, xs[i])
		yi := binIndex(ye, ys[i])
		h.Cells[yi][xi] += inc
	}
	return h, nil
}

// RowSums returns the percentage of points per Y bin (summing a row gives
// the paper's "10% of AS paths suffer at least …" statements).
func (h *Heatmap) RowSums() []float64 {
	out := make([]float64, len(h.Cells))
	for i, row := range h.Cells {
		for _, v := range row {
			out[i] += v
		}
	}
	return out
}

// quantileEdges returns unique quantile edges spanning the sample.
func quantileEdges(xs []float64, nbins int) []float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	edges := make([]float64, 0, nbins+1)
	for i := 0; i <= nbins; i++ {
		e := percentileSorted(s, float64(i)*100/float64(nbins))
		if len(edges) == 0 || e > edges[len(edges)-1] {
			edges = append(edges, e)
		}
	}
	if len(edges) < 2 {
		// Degenerate (constant) sample: a single bin.
		edges = append(edges, edges[0]+1)
	}
	return edges
}

// binIndex places x into half-open bins defined by edges; values at or
// beyond the last edge fall into the final bin.
func binIndex(edges []float64, x float64) int {
	i := sort.SearchFloat64s(edges, x)
	// SearchFloat64s returns first index with edges[i] >= x; adjust to the
	// bin whose lower edge is ≤ x.
	if i < len(edges) && edges[i] == x {
		i++
	}
	i--
	if i < 0 {
		i = 0
	}
	if i > len(edges)-2 {
		i = len(edges) - 2
	}
	return i
}

// KDE evaluates a Gaussian kernel density estimate of xs at the grid
// points. A non-positive bandwidth selects Silverman's rule of thumb.
func KDE(xs []float64, bandwidth float64, grid []float64) []float64 {
	out := make([]float64, len(grid))
	if len(xs) == 0 {
		return out
	}
	if bandwidth <= 0 {
		sd := StdDev(xs)
		if sd == 0 {
			sd = 1
		}
		bandwidth = 1.06 * sd * math.Pow(float64(len(xs)), -0.2)
	}
	norm := 1 / (float64(len(xs)) * bandwidth * math.Sqrt(2*math.Pi))
	for gi, g := range grid {
		sum := 0.0
		for _, x := range xs {
			u := (g - x) / bandwidth
			sum += math.Exp(-0.5 * u * u)
		}
		out[gi] = sum * norm
	}
	return out
}

// Grid returns n evenly spaced points covering [lo, hi].
func Grid(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
