// Package relinfer infers AS business relationships (customer-to-provider
// and peer-to-peer) from observed AS paths, in the spirit of Gao's
// degree-based algorithm [IEEE/ACM ToN 2001] that underlies the CAIDA
// relationship inferences the paper consumes (§5.3, [29]).
//
// The algorithm:
//
//  1. build the AS adjacency graph of all observed paths and compute node
//     degrees;
//  2. every valley-free path goes "uphill" to its highest-degree AS and
//     "downhill" after it — each path votes accordingly on every edge it
//     crosses;
//  3. an edge whose votes agree becomes c2p in the voted direction;
//     conflicting votes resolve by majority, or by sibling/peer when
//     balanced;
//  4. edges adjacent to a path's top AS whose endpoint degrees are within
//     a factor R of each other and whose c2p evidence is weak become p2p.
//
// Because the simulator knows the true relationships, the inference is
// validated in tests — and the AB-rel ablation measures how much the
// downstream §5.3 link classification loses when it runs on inferred
// rather than true relationships.
package relinfer

import (
	"sort"

	"repro/internal/astopo"
	"repro/internal/core/aspath"
	"repro/internal/ipam"
)

// Config tunes the inference.
type Config struct {
	// PeerDegreeRatio bounds the degree ratio of p2p candidates (Gao's R).
	PeerDegreeRatio float64
	// SiblingThreshold is the minimum number of conflicting votes on both
	// directions for an edge to resolve by majority instead of c2p.
	SiblingThreshold int
}

// DefaultConfig returns Gao's commonly used parameters.
func DefaultConfig() Config {
	return Config{PeerDegreeRatio: 60, SiblingThreshold: 1}
}

// Inferred is the inference outcome; it satisfies the ownership package's
// RelFunc signature via Rel.
type Inferred struct {
	rel    map[[2]ipam.ASN]astopo.Relationship // canonical (low, high) -> rel of low to high
	degree map[ipam.ASN]int
}

// Infer runs the algorithm over the observed AS paths.
func Infer(paths []aspath.Path, cfg Config) *Inferred {
	if cfg.PeerDegreeRatio <= 0 {
		cfg.PeerDegreeRatio = 60
	}

	// Phase 1: adjacency and degree.
	adj := make(map[ipam.ASN]map[ipam.ASN]bool)
	addEdge := func(a, b ipam.ASN) {
		if adj[a] == nil {
			adj[a] = make(map[ipam.ASN]bool)
		}
		if adj[b] == nil {
			adj[b] = make(map[ipam.ASN]bool)
		}
		adj[a][b] = true
		adj[b][a] = true
	}
	for _, p := range paths {
		for i := 0; i+1 < len(p); i++ {
			if p[i] != p[i+1] {
				addEdge(p[i], p[i+1])
			}
		}
	}
	degree := make(map[ipam.ASN]int, len(adj))
	for a, ns := range adj {
		degree[a] = len(ns)
	}
	// Transit degree (the AS-rank refinement of Gao): the number of
	// distinct neighbors an AS is seen *forwarding between*. Path
	// endpoints gain none, so with few vantage points the measurement-host
	// stubs cannot be mistaken for the hill's top — plain degree is badly
	// distorted by a narrow corpus.
	transitNbrs := make(map[ipam.ASN]map[ipam.ASN]bool)
	for _, p := range paths {
		for i := 1; i+1 < len(p); i++ {
			if transitNbrs[p[i]] == nil {
				transitNbrs[p[i]] = make(map[ipam.ASN]bool)
			}
			transitNbrs[p[i]][p[i-1]] = true
			transitNbrs[p[i]][p[i+1]] = true
		}
	}
	transitDeg := make(map[ipam.ASN]int, len(transitNbrs))
	for a, ns := range transitNbrs {
		transitDeg[a] = len(ns)
	}
	rank := func(a ipam.ASN) int { return transitDeg[a]*1000 + degree[a] }

	// Phase 2: uphill/downhill votes. upVotes[e] counts paths asserting
	// "low is a customer of high" for the canonical edge e; downVotes the
	// reverse.
	upVotes := make(map[[2]ipam.ASN]int)
	downVotes := make(map[[2]ipam.ASN]int)
	topAdjacent := make(map[[2]ipam.ASN]bool)
	for _, p := range paths {
		if len(p) < 2 {
			continue
		}
		top := 0
		for i := range p {
			if rank(p[i]) > rank(p[top]) {
				top = i
			}
		}
		for i := 0; i+1 < len(p); i++ {
			a, b := p[i], p[i+1]
			if a == b {
				continue
			}
			k := key(a, b)
			if i == top-1 || i == top {
				topAdjacent[k] = true
			}
			if i < top {
				// climbing: a is a customer of b
				if a < b {
					upVotes[k]++
				} else {
					downVotes[k]++
				}
			} else {
				// descending: b is a customer of a
				if b < a {
					upVotes[k]++
				} else {
					downVotes[k]++
				}
			}
		}
	}

	// Phase 3: classify.
	in := &Inferred{rel: make(map[[2]ipam.ASN]astopo.Relationship, len(upVotes)), degree: degree}
	edges := make([][2]ipam.ASN, 0, len(upVotes)+len(downVotes))
	seen := make(map[[2]ipam.ASN]bool)
	for k := range upVotes {
		if !seen[k] {
			seen[k] = true
			edges = append(edges, k)
		}
	}
	for k := range downVotes {
		if !seen[k] {
			seen[k] = true
			edges = append(edges, k)
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	for _, k := range edges {
		up, down := upVotes[k], downVotes[k]
		switch {
		case up > 0 && down == 0:
			in.rel[k] = astopo.RelCustomer // low is customer of high
		case down > 0 && up == 0:
			in.rel[k] = astopo.RelProvider // low is provider of high
		case up > down:
			in.rel[k] = astopo.RelCustomer
		case down > up:
			in.rel[k] = astopo.RelProvider
		default:
			// Balanced conflict: sibling-ish; treat as peer.
			in.rel[k] = astopo.RelPeer
		}
	}

	// Phase 4: peering. Edges adjacent to a top AS with comparable degrees
	// and weak one-sided evidence become p2p.
	for k := range topAdjacent {
		dl, dh := float64(degree[k[0]]), float64(degree[k[1]])
		if dl == 0 || dh == 0 {
			continue
		}
		ratio := dl / dh
		if ratio < 1 {
			ratio = 1 / ratio
		}
		if ratio > cfg.PeerDegreeRatio {
			continue
		}
		up, down := upVotes[k], downVotes[k]
		// Weak evidence, or genuinely conflicting up/down votes (paths
		// climb the edge in both directions, which c2p forbids) → peer.
		if (up <= cfg.SiblingThreshold && down <= cfg.SiblingThreshold) ||
			(up > 0 && down > 0) {
			in.rel[k] = astopo.RelPeer
		}
	}
	return in
}

func key(a, b ipam.ASN) [2]ipam.ASN {
	if a > b {
		a, b = b, a
	}
	return [2]ipam.ASN{a, b}
}

// Rel returns a's inferred relationship to b (RelNone when the edge was
// never observed). It matches ownership.RelFunc.
func (in *Inferred) Rel(a, b ipam.ASN) astopo.Relationship {
	k := key(a, b)
	r, ok := in.rel[k]
	if !ok {
		return astopo.RelNone
	}
	if a == k[0] {
		return r
	}
	return r.Invert()
}

// Edges returns the number of classified AS adjacencies.
func (in *Inferred) Edges() int { return len(in.rel) }

// Degree returns the observed adjacency degree of an AS.
func (in *Inferred) Degree(a ipam.ASN) int { return in.degree[a] }

// Accuracy compares the inference against a ground-truth relationship
// function over the classified edges, returning the fraction whose
// relationship class matches exactly, and the fraction matching when p2p
// and c2p direction errors are distinguished from complete misses.
func (in *Inferred) Accuracy(truth func(a, b ipam.ASN) astopo.Relationship) (exact float64, classified int) {
	if len(in.rel) == 0 {
		return 0, 0
	}
	ok := 0
	for k, r := range in.rel {
		if truth(k[0], k[1]) == r {
			ok++
		}
	}
	return float64(ok) / float64(len(in.rel)), len(in.rel)
}
