package relinfer

import (
	"testing"

	"repro/internal/astopo"
	"repro/internal/bgp"
	"repro/internal/core/aspath"
	"repro/internal/ipam"
)

// hand-built scenario: two tier-1 peers (10, 11) with customers.
//
//	   10 ===== 11        (p2p)
//	  /  \     /  \
//	100   101 102  103    (customers)
//	 |
//	200                   (customer of 100)
func handPaths() []aspath.Path {
	return []aspath.Path{
		{200, 100, 10, 11, 102},
		{200, 100, 10, 11, 103},
		{101, 10, 11, 102},
		{102, 11, 10, 100, 200},
		{103, 11, 10, 101},
		{100, 10, 101},
		{102, 11, 103},
	}
}

func TestInferHandScenario(t *testing.T) {
	in := Infer(handPaths(), DefaultConfig())
	cases := []struct {
		a, b ipam.ASN
		want astopo.Relationship
	}{
		{200, 100, astopo.RelCustomer},
		{100, 200, astopo.RelProvider},
		{100, 10, astopo.RelCustomer},
		{101, 10, astopo.RelCustomer},
		{102, 11, astopo.RelCustomer},
		{103, 11, astopo.RelCustomer},
		{10, 11, astopo.RelPeer},
	}
	for _, c := range cases {
		if got := in.Rel(c.a, c.b); got != c.want {
			t.Errorf("Rel(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if in.Rel(200, 11) != astopo.RelNone {
		t.Error("unobserved edge should be RelNone")
	}
	if in.Edges() == 0 || in.Degree(10) < 3 {
		t.Errorf("edges=%d degree(10)=%d", in.Edges(), in.Degree(10))
	}
}

func TestInferSymmetry(t *testing.T) {
	in := Infer(handPaths(), DefaultConfig())
	for _, pair := range [][2]ipam.ASN{{200, 100}, {10, 11}, {100, 10}} {
		ab := in.Rel(pair[0], pair[1])
		ba := in.Rel(pair[1], pair[0])
		if ab.Invert() != ba {
			t.Errorf("asymmetric inference %v-%v: %v / %v", pair[0], pair[1], ab, ba)
		}
	}
}

func TestInferEmptyAndDegenerate(t *testing.T) {
	in := Infer(nil, DefaultConfig())
	if in.Edges() != 0 {
		t.Error("empty input should infer nothing")
	}
	in = Infer([]aspath.Path{{42}}, DefaultConfig())
	if in.Edges() != 0 {
		t.Error("single-AS paths carry no edges")
	}
	// Zero config values fall back to defaults without panicking.
	in = Infer(handPaths(), Config{})
	if in.Edges() == 0 {
		t.Error("zero-config inference failed")
	}
}

// TestAccuracyOnGeneratedTopology validates the inference against the
// simulator's ground truth over real policy-routed paths.
func TestAccuracyOnGeneratedTopology(t *testing.T) {
	topo, err := astopo.Generate(astopo.DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	r := bgp.NewRouting(topo, nil, bgp.V4)
	var paths []aspath.Path
	ases := topo.ASes
	for i := 0; i < len(ases); i += 2 {
		for j := 1; j < len(ases); j += 5 {
			if i == j {
				continue
			}
			if p := r.Path(ases[i].ASN, ases[j].ASN); p != nil {
				paths = append(paths, aspath.Path(p))
			}
		}
	}
	if len(paths) < 1000 {
		t.Fatalf("only %d paths", len(paths))
	}
	in := Infer(paths, DefaultConfig())
	acc, n := in.Accuracy(topo.Rel)
	t.Logf("relinfer: %d edges classified, accuracy %.3f over %d paths", n, acc, len(paths))
	if n < 100 {
		t.Fatalf("too few classified edges: %d", n)
	}
	if acc < 0.75 {
		t.Errorf("accuracy = %.3f, want >= 0.75 (Gao reported >90%% on BGP tables)", acc)
	}
}
