// Package congest implements the paper's congestion analyses: detection of
// consistent (diurnally oscillating) congestion from ping meshes (§5.1),
// localization of the congested segment from traceroute campaigns via
// per-segment Pearson correlation (§5.2), and estimation of the congestion
// overhead (§5.4, Figure 9).
package congest

import (
	"fmt"
	"math"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core/fft"
	"repro/internal/core/stats"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Series is an evenly spaced RTT time series for one directed pair.
// Missing samples (losses) hold NaN.
type Series struct {
	Key      trace.PairKey
	Interval time.Duration
	RTTms    []float64
	Received int
}

// Values returns the series with NaN gaps filled by linear interpolation
// (ends clamped to the nearest sample) — the spectral analysis needs an
// evenly spaced series.
func (s *Series) Values() []float64 {
	out := append([]float64(nil), s.RTTms...)
	fillGaps(out)
	return out
}

func fillGaps(xs []float64) {
	n := len(xs)
	i := 0
	for i < n {
		if !math.IsNaN(xs[i]) {
			i++
			continue
		}
		j := i
		for j < n && math.IsNaN(xs[j]) {
			j++
		}
		switch {
		case i == 0 && j == n:
			for k := range xs {
				xs[k] = 0
			}
		case i == 0:
			for k := i; k < j; k++ {
				xs[k] = xs[j]
			}
		case j == n:
			for k := i; k < n; k++ {
				xs[k] = xs[i-1]
			}
		default:
			lo, hi := xs[i-1], xs[j]
			span := float64(j - i + 1)
			for k := i; k < j; k++ {
				frac := float64(k-i+1) / span
				xs[k] = lo*(1-frac) + hi*frac
			}
		}
		i = j
	}
}

// BuildSeries folds ping records into per-pair series. Pairs with fewer
// than minSamples received measurements are dropped (the paper required
// ≥600 of 672 possible samples).
func BuildSeries(pings []*trace.Ping, interval, duration time.Duration, minSamples int) map[trace.PairKey]*Series {
	slots := int(duration / interval)
	if slots <= 0 {
		return nil
	}
	out := make(map[trace.PairKey]*Series)
	for _, p := range pings {
		k := p.Key()
		s := out[k]
		if s == nil {
			s = &Series{Key: k, Interval: interval, RTTms: make([]float64, slots)}
			for i := range s.RTTms {
				s.RTTms[i] = math.NaN()
			}
			out[k] = s
		}
		slot := int(p.At / interval)
		if slot < 0 || slot >= slots {
			continue
		}
		if p.Lost {
			continue
		}
		s.RTTms[slot] = float64(p.RTT) / float64(time.Millisecond)
		s.Received++
	}
	for k, s := range out {
		if s.Received < minSamples {
			delete(out, k)
		}
	}
	return out
}

// VariationMs returns the p95−p5 spread of the series (the paper's §5.1
// variation metric).
func (s *Series) VariationMs() float64 {
	vals := received(s.RTTms)
	if len(vals) == 0 {
		return 0
	}
	return stats.Percentile(vals, 95) - stats.Percentile(vals, 5)
}

func received(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, v := range xs {
		if !math.IsNaN(v) {
			out = append(out, v)
		}
	}
	return out
}

// DiurnalRatio returns the fraction of the series' energy at f = 1/day.
func (s *Series) DiurnalRatio() float64 {
	return fft.DiurnalRatio(s.Values(), s.Interval)
}

// Detector holds the §5.1 thresholds.
type Detector struct {
	// VariationMs is the minimum p95−p5 spread (paper: 10 ms).
	VariationMs float64
	// PSDThreshold is the minimum diurnal power ratio (paper: 0.3).
	PSDThreshold float64

	// evals counts detector evaluations (each a percentile pass and, when
	// the variation gate passes, an FFT); nil until WithMetrics.
	evals *obs.Counter
}

// MetricDetectorEvals is the metric name registered by WithMetrics.
const MetricDetectorEvals = "s2s_congest_detector_evals_total"

// DefaultDetector returns the paper's thresholds.
func DefaultDetector() Detector {
	return Detector{VariationMs: 10, PSDThreshold: fft.DefaultDiurnalThreshold}
}

// WithMetrics returns a copy of the detector that counts its evaluations
// in reg (a nil registry leaves the copy uninstrumented).
func (d Detector) WithMetrics(reg *obs.Registry) Detector {
	d.evals = reg.Counter(MetricDetectorEvals, "congestion-detector evaluations (percentile spread + diurnal FFT)")
	return d
}

// Congested reports whether the series shows consistent congestion: large
// variation with a strong diurnal pattern.
func (d Detector) Congested(s *Series) bool {
	d.evals.Inc()
	return s.VariationMs() >= d.VariationMs && s.DiurnalRatio() >= d.PSDThreshold
}

// MeshSummary aggregates §5.1 over a ping mesh, per protocol.
type MeshSummary struct {
	Pairs         int
	HighVariation int // p95−p5 ≥ threshold
	Congested     int // high variation and strong diurnal pattern
}

// HighVariationFrac returns the fraction of pairs with large RTT variation.
func (m MeshSummary) HighVariationFrac() float64 { return frac(m.HighVariation, m.Pairs) }

// CongestedFrac returns the fraction of pairs with consistent congestion.
func (m MeshSummary) CongestedFrac() float64 { return frac(m.Congested, m.Pairs) }

func frac(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Summarize runs the detector over a series map, split by protocol.
func Summarize(series map[trace.PairKey]*Series, d Detector) (v4, v6 MeshSummary) {
	return SummarizeParallel(series, d, 1)
}

// SummarizeParallel is Summarize with the per-pair detector (percentiles
// plus an FFT each) evaluated on workers goroutines. Counts are
// order-independent, so the result is identical to the sequential one.
func SummarizeParallel(series map[trace.PairKey]*Series, d Detector, workers int) (v4, v6 MeshSummary) {
	keys := make([]trace.PairKey, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	eval := evalDetector(keys, series, d, workers)
	for i, k := range keys {
		m := &v4
		if k.V6 {
			m = &v6
		}
		m.Pairs++
		if eval[i].highVar {
			m.HighVariation++
			if eval[i].congested {
				m.Congested++
			}
		}
	}
	return v4, v6
}

type detectorVerdict struct {
	highVar   bool
	congested bool
}

// evalDetector runs the detector over keys on workers goroutines,
// returning per-key verdicts aligned with keys.
func evalDetector(keys []trace.PairKey, series map[trace.PairKey]*Series, d Detector, workers int) []detectorVerdict {
	out := make([]detectorVerdict, len(keys))
	if workers > len(keys) {
		workers = len(keys)
	}
	if workers <= 1 {
		for i, k := range keys {
			out[i] = verdictFor(series[k], d)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(keys) {
					return
				}
				out[i] = verdictFor(series[keys[i]], d)
			}
		}()
	}
	wg.Wait()
	return out
}

func verdictFor(s *Series, d Detector) detectorVerdict {
	d.evals.Inc()
	v := detectorVerdict{highVar: s.VariationMs() >= d.VariationMs}
	if v.highVar {
		v.congested = s.DiurnalRatio() >= d.PSDThreshold
	}
	return v
}

// DetectParallel runs the detector over every series on workers
// goroutines and returns the flagged keys in no particular order.
func DetectParallel(series map[trace.PairKey]*Series, d Detector, workers int) map[trace.PairKey]bool {
	keys := make([]trace.PairKey, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	eval := evalDetector(keys, series, d, workers)
	out := make(map[trace.PairKey]bool, len(keys))
	for i, k := range keys {
		out[k] = eval[i].highVar && eval[i].congested
	}
	return out
}

// Localization is the outcome of segment localization for one pair.
type Localization struct {
	Key trace.PairKey
	// SegmentIndex is the 1-based hop position whose segment first matched
	// the end-to-end congestion pattern; HopAddr is that hop's address.
	SegmentIndex int
	HopAddr      netip.Addr
	// Rho is the Pearson correlation of the matching segment.
	Rho float64
	// OverheadMs estimates the congestion's RTT contribution (p95−p5 of
	// the end-to-end series), the Figure 9 quantity.
	OverheadMs float64
	// DiurnalRatio of the end-to-end series.
	DiurnalRatio float64
}

// Localizer holds the §5.2 parameters.
type Localizer struct {
	// MinRho is the correlation threshold for marking a segment (paper: 0.5).
	MinRho float64
	// PSDThreshold gates localization on a persisting diurnal signal.
	PSDThreshold float64
	// MinStableFrac is the fraction of traceroutes that must agree on the
	// IP-level path (the paper restricts to static IP-level paths).
	MinStableFrac float64
	// Interval is the campaign cadence.
	Interval time.Duration
}

// DefaultLocalizer returns the paper's parameters for a 30-minute campaign.
func DefaultLocalizer() Localizer {
	return Localizer{
		MinRho:        0.5,
		PSDThreshold:  fft.DefaultDiurnalThreshold,
		MinStableFrac: 0.9,
		Interval:      30 * time.Minute,
	}
}

// Errors returned by Localize.
var (
	ErrUnstablePath = fmt.Errorf("congest: IP-level path not static")
	ErrNoDiurnal    = fmt.Errorf("congest: no persistent diurnal signal")
	ErrNoSegment    = fmt.Errorf("congest: no segment matches the end-to-end pattern")
	ErrNoData       = fmt.Errorf("congest: not enough complete traceroutes")
)

// Localize infers the congested segment from the time-ordered traceroutes
// of one directed pair. Following the paper, it (1) verifies the IP-level
// path is static, (2) re-checks the diurnal signal on the end-to-end RTTs,
// (3) builds one RTT time series per segment, and (4) reports the first
// segment whose series correlates with the end-to-end series at ρ ≥ MinRho.
func (l Localizer) Localize(trs []*trace.Traceroute) (*Localization, error) {
	// The spectral analysis assumes one sample per round: keep complete
	// traceroutes, one per timestamp.
	complete := make([]*trace.Traceroute, 0, len(trs))
	seenAt := make(map[time.Duration]bool, len(trs))
	for _, tr := range trs {
		if !tr.Complete || len(tr.Hops) <= 1 || seenAt[tr.At] {
			continue
		}
		seenAt[tr.At] = true
		complete = append(complete, tr)
	}
	if len(complete) < 16 {
		return nil, ErrNoData
	}

	// Static-path check via a consensus path: majority hop count, then the
	// majority address per position (unresponsive probes are rate-limiting
	// noise, not path changes, and are ignored). A traceroute is "stable"
	// when every responsive hop matches the consensus.
	lenCounts := make(map[int]int)
	for _, tr := range complete {
		lenCounts[len(tr.Hops)]++
	}
	nHops, bestN := 0, 0
	for n, c := range lenCounts {
		if c > bestN || (c == bestN && n < nHops) {
			nHops, bestN = n, c
		}
	}
	sameLen := make([]*trace.Traceroute, 0, bestN)
	for _, tr := range complete {
		if len(tr.Hops) == nHops {
			sameLen = append(sameLen, tr)
		}
	}
	consensus := make([]netip.Addr, nHops)
	for k := 0; k < nHops; k++ {
		votes := make(map[netip.Addr]int)
		for _, tr := range sameLen {
			if a := tr.Hops[k].Addr; a.IsValid() {
				votes[a]++
			}
		}
		top, topN := netip.Addr{}, 0
		for a, n := range votes {
			if n > topN || (n == topN && a.Compare(top) < 0) {
				top, topN = a, n
			}
		}
		consensus[k] = top
	}
	stable := make([]*trace.Traceroute, 0, len(sameLen))
	for _, tr := range sameLen {
		ok := true
		for k, h := range tr.Hops {
			if h.Addr.IsValid() && consensus[k].IsValid() && h.Addr != consensus[k] {
				ok = false
				break
			}
		}
		if ok {
			stable = append(stable, tr)
		}
	}
	if float64(len(stable)) < l.MinStableFrac*float64(len(complete)) {
		return nil, ErrUnstablePath
	}
	// Time series are slotted by timestamp: missing rounds (incomplete or
	// unstable traceroutes) become NaN gaps, interpolated before spectral
	// analysis. Concatenating samples instead would let random losses
	// destroy the periodicity in sample space.
	var maxAt time.Duration
	for _, tr := range stable {
		if tr.At > maxAt {
			maxAt = tr.At
		}
	}
	slots := int(maxAt/l.Interval) + 1
	e2e := nanSlice(slots)
	for _, tr := range stable {
		if slot := int(tr.At / l.Interval); slot >= 0 && slot < slots {
			e2e[slot] = float64(tr.Hops[nHops-1].RTT) / float64(time.Millisecond)
		}
	}
	filled := append([]float64(nil), e2e...)
	fillGaps(filled)
	ratio := fft.PowerFraction(filled, diurnalFreq(l.Interval), 2)
	if ratio < l.PSDThreshold {
		return nil, ErrNoDiurnal
	}

	out := &Localization{
		Key:          stable[0].Key(),
		OverheadMs:   stats.Percentile(received(e2e), 95) - stats.Percentile(received(e2e), 5),
		DiurnalRatio: ratio,
	}
	// Per-segment series; unresponsive probes and missing rounds leave
	// gaps, and Pearson runs over the slots where both series exist.
	for k := 0; k < nHops-1; k++ {
		segSlots := nanSlice(slots)
		present := 0
		for _, tr := range stable {
			h := tr.Hops[k]
			if !h.Responsive() {
				continue
			}
			if slot := int(tr.At / l.Interval); slot >= 0 && slot < slots {
				segSlots[slot] = float64(h.RTT) / float64(time.Millisecond)
				present++
			}
		}
		if present < len(stable)/2 {
			continue
		}
		var seg, ref []float64
		for i := 0; i < slots; i++ {
			if !math.IsNaN(segSlots[i]) && !math.IsNaN(e2e[i]) {
				seg = append(seg, segSlots[i])
				ref = append(ref, e2e[i])
			}
		}
		if rho := stats.Pearson(seg, ref); rho >= l.MinRho {
			out.SegmentIndex = k + 1
			out.HopAddr = consensus[k]
			out.Rho = rho
			return out, nil
		}
	}
	return nil, ErrNoSegment
}

func nanSlice(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.NaN()
	}
	return out
}

func diurnalFreq(interval time.Duration) float64 {
	return float64(interval) / float64(24*time.Hour)
}

// OverheadSamples extracts the Figure 9 population: the congestion
// overhead (ms) of each successfully localized pair.
func OverheadSamples(locs []*Localization) []float64 {
	out := make([]float64, 0, len(locs))
	for _, l := range locs {
		out = append(out, l.OverheadMs)
	}
	return out
}
