package congest

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// TestDetectorMetrics checks that an instrumented detector counts one
// evaluation per series, through both the direct and the parallel path,
// and that instrumentation does not change verdicts.
func TestDetectorMetrics(t *testing.T) {
	pings := synthPings(t, 30, 0)
	interval := 15 * time.Minute
	series := BuildSeries(pings, interval, 672*interval, 500)
	if len(series) == 0 {
		t.Fatal("no series built")
	}

	reg := obs.NewRegistry()
	plain := DefaultDetector()
	det := plain.WithMetrics(reg)

	evals := int64(0)
	for _, s := range series {
		if det.Congested(s) != plain.Congested(s) {
			t.Error("instrumented detector changed a verdict")
		}
		evals++
	}
	c := reg.Counter(MetricDetectorEvals, "")
	if got := c.Value(); got != evals {
		t.Errorf("evals counter = %d, want %d", got, evals)
	}

	// SummarizeParallel evaluates each pair exactly once per call.
	Summarize(series, det)
	SummarizeParallel(series, det, 4)
	want := evals + 2*int64(len(series))
	if got := c.Value(); got != want {
		t.Errorf("evals counter after summaries = %d, want %d", got, want)
	}
}
