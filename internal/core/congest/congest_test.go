package congest

import (
	"math"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"repro/internal/trace"
)

// bump returns the raised-cosine busy-hour delay (ms) at sample i.
func bump(i int, interval time.Duration, amp float64) float64 {
	hour := math.Mod(float64(i)*interval.Hours(), 24)
	d := math.Abs(hour - 20)
	if d > 12 {
		d = 24 - d
	}
	if d >= 3 {
		return 0
	}
	return amp * 0.5 * (1 + math.Cos(2*math.Pi*d/6))
}

func synthPings(t *testing.T, amp float64, lossEvery int) []*trace.Ping {
	t.Helper()
	interval := 15 * time.Minute
	var out []*trace.Ping
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 672; i++ {
		p := &trace.Ping{
			SrcID: 1, DstID: 2,
			At:  time.Duration(i) * interval,
			RTT: time.Duration((80 + bump(i, interval, amp) + rng.NormFloat64()) * float64(time.Millisecond)),
		}
		if lossEvery > 0 && i%lossEvery == 0 {
			p.Lost = true
			p.RTT = 0
		}
		out = append(out, p)
	}
	return out
}

func TestBuildSeries(t *testing.T) {
	pings := synthPings(t, 25, 10)
	series := BuildSeries(pings, 15*time.Minute, 7*24*time.Hour, 600)
	s, ok := series[trace.PairKey{SrcID: 1, DstID: 2}]
	if !ok {
		t.Fatal("series missing")
	}
	if s.Received < 600 || s.Received >= 672 {
		t.Errorf("received = %d", s.Received)
	}
	// Lost slots hold NaN before filling.
	if !math.IsNaN(s.RTTms[0]) {
		t.Error("lost slot should be NaN")
	}
	vals := s.Values()
	for i, v := range vals {
		if math.IsNaN(v) {
			t.Fatalf("gap not filled at %d", i)
		}
	}
}

func TestBuildSeriesMinSamples(t *testing.T) {
	pings := synthPings(t, 25, 2) // half the samples lost
	series := BuildSeries(pings, 15*time.Minute, 7*24*time.Hour, 600)
	if len(series) != 0 {
		t.Error("sparse pair should be dropped")
	}
	if s := BuildSeries(nil, 15*time.Minute, 0, 1); len(s) != 0 {
		t.Error("zero duration should yield nothing")
	}
}

func TestFillGapsEdges(t *testing.T) {
	xs := []float64{math.NaN(), 10, math.NaN(), math.NaN(), 40, math.NaN()}
	fillGaps(xs)
	want := []float64{10, 10, 20, 30, 40, 40}
	for i := range want {
		if math.Abs(xs[i]-want[i]) > 1e-9 {
			t.Fatalf("fillGaps[%d] = %v, want %v", i, xs[i], want[i])
		}
	}
	all := []float64{math.NaN(), math.NaN()}
	fillGaps(all)
	if all[0] != 0 || all[1] != 0 {
		t.Error("all-NaN series should zero-fill")
	}
}

func TestDetectorCongested(t *testing.T) {
	d := DefaultDetector()
	congested := BuildSeries(synthPings(t, 25, 0), 15*time.Minute, 7*24*time.Hour, 600)
	s := congested[trace.PairKey{SrcID: 1, DstID: 2}]
	if !d.Congested(s) {
		t.Errorf("25ms diurnal bump not detected (var=%.1f ratio=%.2f)",
			s.VariationMs(), s.DiurnalRatio())
	}
	flat := BuildSeries(synthPings(t, 0, 0), 15*time.Minute, 7*24*time.Hour, 600)
	sf := flat[trace.PairKey{SrcID: 1, DstID: 2}]
	if d.Congested(sf) {
		t.Errorf("flat series misdetected (var=%.1f ratio=%.2f)",
			sf.VariationMs(), sf.DiurnalRatio())
	}
}

func TestSummarize(t *testing.T) {
	series := map[trace.PairKey]*Series{}
	add := func(id int, v6 bool, amp float64) {
		pings := synthPings(t, amp, 0)
		for _, p := range pings {
			p.SrcID, p.V6 = id, v6
		}
		m := BuildSeries(pings, 15*time.Minute, 7*24*time.Hour, 600)
		for k, s := range m {
			series[k] = s
		}
	}
	add(1, false, 25) // congested v4
	add(2, false, 0)  // quiet v4
	add(3, false, 0)
	add(4, true, 30) // congested v6
	v4, v6 := Summarize(series, DefaultDetector())
	if v4.Pairs != 3 || v4.Congested != 1 || v4.HighVariation != 1 {
		t.Errorf("v4 summary = %+v", v4)
	}
	if v6.Pairs != 1 || v6.Congested != 1 {
		t.Errorf("v6 summary = %+v", v6)
	}
	if math.Abs(v4.CongestedFrac()-1.0/3) > 1e-9 {
		t.Errorf("congested frac = %v", v4.CongestedFrac())
	}
	var empty MeshSummary
	if empty.CongestedFrac() != 0 || empty.HighVariationFrac() != 0 {
		t.Error("empty summary fractions should be 0")
	}
}

// synthTraceroutes builds a 3-hop campaign where the congestion enters at
// hop congestedAt (1-based).
func synthTraceroutes(t *testing.T, congestedAt int, rounds int) []*trace.Traceroute {
	t.Helper()
	interval := 30 * time.Minute
	hops := []string{"10.0.0.1", "20.0.0.1", "30.0.0.1", "40.0.0.1"}
	base := []float64{2, 20, 40, 80}
	rng := rand.New(rand.NewSource(2))
	var out []*trace.Traceroute
	for i := 0; i < rounds; i++ {
		tr := &trace.Traceroute{
			SrcID: 1, DstID: 2, Complete: true,
			At: time.Duration(i) * interval,
		}
		b := bump(i, interval, 25)
		for k, h := range hops {
			rtt := base[k] + rng.NormFloat64()*0.5
			if k+1 >= congestedAt {
				rtt += b
			}
			tr.Hops = append(tr.Hops, trace.Hop{
				Addr: netip.MustParseAddr(h),
				RTT:  time.Duration(rtt * float64(time.Millisecond)),
			})
		}
		tr.RTT = tr.Hops[len(tr.Hops)-1].RTT
		out = append(out, tr)
	}
	return out
}

func TestLocalizeFindsFirstCongestedSegment(t *testing.T) {
	l := DefaultLocalizer()
	for _, at := range []int{1, 2, 3} {
		trs := synthTraceroutes(t, at, 672)
		loc, err := l.Localize(trs)
		if err != nil {
			t.Fatalf("congestedAt=%d: %v", at, err)
		}
		if loc.SegmentIndex != at {
			t.Errorf("congestedAt=%d: localized segment %d", at, loc.SegmentIndex)
		}
		if loc.Rho < 0.5 {
			t.Errorf("rho = %v", loc.Rho)
		}
		// Overhead ≈ bump amplitude.
		if loc.OverheadMs < 15 || loc.OverheadMs > 35 {
			t.Errorf("overhead = %.1f ms, want ~25", loc.OverheadMs)
		}
	}
}

func TestLocalizeNoDiurnal(t *testing.T) {
	l := DefaultLocalizer()
	// congestedAt beyond path → no bump anywhere.
	trs := synthTraceroutes(t, 99, 672)
	if _, err := l.Localize(trs); err != ErrNoDiurnal {
		t.Errorf("err = %v, want ErrNoDiurnal", err)
	}
}

func TestLocalizeUnstablePath(t *testing.T) {
	l := DefaultLocalizer()
	trs := synthTraceroutes(t, 2, 672)
	// Flip 20% of traceroutes to a different hop address.
	for i := 0; i < len(trs); i += 5 {
		trs[i].Hops[1].Addr = netip.MustParseAddr("99.0.0.1")
	}
	if _, err := l.Localize(trs); err != ErrUnstablePath {
		t.Errorf("err = %v, want ErrUnstablePath", err)
	}
}

func TestLocalizeNoData(t *testing.T) {
	l := DefaultLocalizer()
	if _, err := l.Localize(nil); err != ErrNoData {
		t.Errorf("err = %v, want ErrNoData", err)
	}
	trs := synthTraceroutes(t, 2, 8)
	if _, err := l.Localize(trs); err != ErrNoData {
		t.Errorf("err = %v, want ErrNoData", err)
	}
}

func TestLocalizeSkipsUnresponsiveSegments(t *testing.T) {
	l := DefaultLocalizer()
	trs := synthTraceroutes(t, 2, 672)
	// Blank the first hop everywhere: localization should land on hop 2.
	for _, tr := range trs {
		tr.Hops[0] = trace.Hop{}
	}
	loc, err := l.Localize(trs)
	if err != nil {
		t.Fatal(err)
	}
	if loc.SegmentIndex != 2 {
		t.Errorf("segment = %d, want 2", loc.SegmentIndex)
	}
}

func TestOverheadSamples(t *testing.T) {
	locs := []*Localization{{OverheadMs: 20}, {OverheadMs: 30}}
	got := OverheadSamples(locs)
	if len(got) != 2 || got[0] != 20 || got[1] != 30 {
		t.Errorf("OverheadSamples = %v", got)
	}
}

// TestSummarizeParallelDeterminism pins the worker-count independence of
// the parallel mesh summary: the atomic work-stealing split must produce
// an identical MeshSummary at 1, 4, and 8 workers (CI runs this with
// -race, which also catches unsynchronized summary accumulation).
func TestSummarizeParallelDeterminism(t *testing.T) {
	series := map[trace.PairKey]*Series{}
	rng := rand.New(rand.NewSource(11))
	for id := 1; id <= 24; id++ {
		amp := 0.0
		switch id % 3 {
		case 0:
			amp = 25 + rng.Float64()*10
		case 1:
			amp = 5 * rng.Float64()
		}
		pings := synthPings(t, amp, 0)
		for _, p := range pings {
			p.SrcID, p.V6 = id, id%2 == 0
		}
		for k, s := range BuildSeries(pings, 15*time.Minute, 7*24*time.Hour, 600) {
			series[k] = s
		}
	}
	det := DefaultDetector()
	base4, base6 := SummarizeParallel(series, det, 1)
	if base4.Pairs+base6.Pairs != 24 {
		t.Fatalf("seeded mesh covered %d+%d pairs, want 24", base4.Pairs, base6.Pairs)
	}
	if base4.Congested+base6.Congested == 0 {
		t.Fatal("seeded mesh produced no congested pairs; the determinism check would be vacuous")
	}
	for _, workers := range []int{4, 8} {
		v4, v6 := SummarizeParallel(series, det, workers)
		if v4 != base4 || v6 != base6 {
			t.Errorf("workers=%d: summary (%+v, %+v) != workers=1 (%+v, %+v)",
				workers, v4, v6, base4, base6)
		}
	}
}
