// Package fft implements the spectral machinery behind the paper's
// congestion detector (§5.1): a radix-2 fast Fourier transform, a Goertzel
// single-bin evaluator for arbitrary frequencies, and the diurnal power
// ratio — the fraction of a series' energy concentrated at f = 1/day —
// thresholded at 0.3 to flag consistent congestion, following Luckie et
// al.'s TSLP processing [IMC 2014] as adapted by the paper.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"time"
)

// FFT computes the in-order discrete Fourier transform of x, whose length
// must be a power of two. The input is not modified.
func FFT(x []complex128) ([]complex128, error) {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: length %d is not a power of two", n)
	}
	out := make([]complex128, n)
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i, v := range x {
		out[bits.Reverse64(uint64(i))>>shift] = v
	}
	// Iterative Cooley-Tukey.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := -2 * math.Pi / float64(size)
		wBase := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := out[start+k]
				b := out[start+k+half] * w
				out[start+k] = a + b
				out[start+k+half] = a - b
				w *= wBase
			}
		}
	}
	return out, nil
}

// IFFT computes the inverse transform of X (power-of-two length).
func IFFT(X []complex128) ([]complex128, error) {
	n := len(X)
	conj := make([]complex128, n)
	for i, v := range X {
		conj[i] = cmplx.Conj(v)
	}
	y, err := FFT(conj)
	if err != nil {
		return nil, err
	}
	scale := complex(1/float64(n), 0)
	for i := range y {
		y[i] = cmplx.Conj(y[i]) * scale
	}
	return y, nil
}

// DFTNaive is the O(n²) reference transform used to validate FFT.
func DFTNaive(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}

// NextPow2 returns the smallest power of two ≥ n (minimum 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// Goertzel evaluates the DFT of a real series at a single frequency f
// expressed in cycles per sample, returning the complex coefficient
// X(f) = Σ x[t]·e^{-2πi·f·t}. Unlike FFT bins, f need not be a multiple of
// 1/len(x).
func Goertzel(x []float64, f float64) complex128 {
	var re, im float64
	w := -2 * math.Pi * f
	for t, v := range x {
		angle := w * float64(t)
		re += v * math.Cos(angle)
		im += v * math.Sin(angle)
	}
	return complex(re, im)
}

// TotalPower returns the AC energy of the series: Σ (x[t] − mean)².
func TotalPower(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	sum := 0.0
	for _, v := range x {
		d := v - mean
		sum += d * d
	}
	return sum
}

// PowerFraction returns the fraction of the demeaned series' energy
// concentrated at frequency f (cycles per sample), including the specified
// number of harmonics (1 = fundamental only). For a pure sinusoid at f the
// fraction is 1; for white noise it is O(1/n).
//
// Parseval gives Σ|X(k)|² = n·Σx², and a real series splits its energy
// between the ±f conjugate bins, hence the factor 2/n.
func PowerFraction(x []float64, f float64, harmonics int) float64 {
	n := len(x)
	if n == 0 || f <= 0 || harmonics < 1 {
		return 0
	}
	total := TotalPower(x)
	if total == 0 {
		return 0
	}
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	dem := make([]float64, n)
	for i, v := range x {
		dem[i] = v - mean
	}
	power := 0.0
	for h := 1; h <= harmonics; h++ {
		fh := f * float64(h)
		if fh >= 0.5 {
			break // beyond Nyquist
		}
		c := Goertzel(dem, fh)
		power += 2 * (real(c)*real(c) + imag(c)*imag(c)) / float64(n)
	}
	frac := power / total
	if frac > 1 {
		frac = 1
	}
	return frac
}

// DefaultDiurnalThreshold is the paper's empirically chosen cutoff on the
// diurnal power ratio.
const DefaultDiurnalThreshold = 0.3

// DiurnalRatio returns the fraction of the series' energy at the
// once-per-day frequency (fundamental plus second harmonic, to capture
// non-sinusoidal busy-hour bumps), given the sampling interval.
func DiurnalRatio(x []float64, sampleInterval time.Duration) float64 {
	if sampleInterval <= 0 {
		return 0
	}
	f := float64(sampleInterval) / float64(24*time.Hour)
	return PowerFraction(x, f, 2)
}

// IsDiurnal reports whether the series carries a strong daily oscillation:
// DiurnalRatio ≥ threshold (use DefaultDiurnalThreshold for the paper's
// setting).
func IsDiurnal(x []float64, sampleInterval time.Duration, threshold float64) bool {
	return DiurnalRatio(x, sampleInterval) >= threshold
}
