package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"time"
)

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		got, err := FFT(x)
		if err != nil {
			t.Fatal(err)
		}
		want := DFTNaive(x)
		for k := range want {
			if cmplx.Abs(got[k]-want[k]) > 1e-8*float64(n) {
				t.Fatalf("n=%d bin %d: %v vs %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestFFTRejectsNonPow2(t *testing.T) {
	if _, err := FFT(make([]complex128, 3)); err == nil {
		t.Error("length 3 should error")
	}
	if _, err := FFT(nil); err == nil {
		t.Error("empty should error")
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := make([]complex128, 128)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	X, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	y, err := IFFT(X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(x[i]-y[i]) > 1e-9 {
			t.Fatalf("IFFT(FFT(x)) differs at %d: %v vs %v", i, x[i], y[i])
		}
	}
}

func TestFFTKnownSinusoid(t *testing.T) {
	// A sinusoid at bin 5 puts all its energy in bins 5 and n-5.
	n := 64
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Sin(2*math.Pi*5*float64(i)/float64(n)), 0)
	}
	X, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	for k := range X {
		mag := cmplx.Abs(X[k])
		if k == 5 || k == n-5 {
			if math.Abs(mag-float64(n)/2) > 1e-9 {
				t.Errorf("bin %d magnitude %v, want %v", k, mag, float64(n)/2)
			}
		} else if mag > 1e-9 {
			t.Errorf("bin %d magnitude %v, want 0", k, mag)
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := [][2]int{{0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {672, 1024}, {1024, 1024}}
	for _, c := range cases {
		if got := NextPow2(c[0]); got != c[1] {
			t.Errorf("NextPow2(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}

func TestGoertzelMatchesFFTBins(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 128
	x := make([]float64, n)
	cx := make([]complex128, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		cx[i] = complex(x[i], 0)
	}
	X, err := FFT(cx)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 1, 7, 31, 63} {
		g := Goertzel(x, float64(k)/float64(n))
		if cmplx.Abs(g-X[k]) > 1e-8 {
			t.Errorf("Goertzel bin %d = %v, FFT = %v", k, g, X[k])
		}
	}
}

func TestPowerFractionPureSinusoid(t *testing.T) {
	n := 672 // one week at 15 minutes
	f := 1.0 / 96
	x := make([]float64, n)
	for i := range x {
		x[i] = 25 * math.Sin(2*math.Pi*f*float64(i))
	}
	if got := PowerFraction(x, f, 1); got < 0.999 {
		t.Errorf("pure sinusoid fraction = %v, want ~1", got)
	}
	// At the wrong frequency: tiny.
	if got := PowerFraction(x, f*3.1, 1); got > 0.01 {
		t.Errorf("off-frequency fraction = %v, want ~0", got)
	}
}

func TestPowerFractionWhiteNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := make([]float64, 672)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	if got := PowerFraction(x, 1.0/96, 2); got > 0.05 {
		t.Errorf("white noise fraction = %v, want near 0", got)
	}
}

func TestPowerFractionEdgeCases(t *testing.T) {
	if PowerFraction(nil, 0.1, 1) != 0 {
		t.Error("empty series should be 0")
	}
	if PowerFraction([]float64{1, 1, 1}, 0.1, 1) != 0 {
		t.Error("constant series should be 0")
	}
	if PowerFraction([]float64{1, 2}, 0, 1) != 0 {
		t.Error("f=0 should be 0")
	}
	if PowerFraction([]float64{1, 2}, 0.1, 0) != 0 {
		t.Error("harmonics=0 should be 0")
	}
	// Fraction is clamped to [0, 1].
	x := []float64{1, -1, 1, -1}
	if got := PowerFraction(x, 0.49, 3); got < 0 || got > 1 {
		t.Errorf("fraction out of range: %v", got)
	}
}

func TestDiurnalRatioDetectsDailyBump(t *testing.T) {
	// A raised-cosine busy-hour bump (6h of 24h) + noise, sampled every
	// 15 minutes for a week — the shape the congestion model produces.
	rng := rand.New(rand.NewSource(5))
	n := 672
	x := make([]float64, n)
	for i := range x {
		hour := math.Mod(float64(i)*0.25, 24)
		d := math.Abs(hour - 20)
		if d > 12 {
			d = 24 - d
		}
		bump := 0.0
		if d < 3 {
			bump = 25 * 0.5 * (1 + math.Cos(2*math.Pi*d/6))
		}
		x[i] = 80 + bump + rng.NormFloat64()*2
	}
	ratio := DiurnalRatio(x, 15*time.Minute)
	if ratio < DefaultDiurnalThreshold {
		t.Errorf("diurnal bump ratio = %v, want >= %v", ratio, DefaultDiurnalThreshold)
	}
	if !IsDiurnal(x, 15*time.Minute, DefaultDiurnalThreshold) {
		t.Error("IsDiurnal should flag the bump")
	}
}

func TestDiurnalRatioRejectsFlatAndNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	flat := make([]float64, 672)
	noisy := make([]float64, 672)
	spiky := make([]float64, 672)
	for i := range flat {
		flat[i] = 80
		noisy[i] = 80 + rng.NormFloat64()*3
		spiky[i] = 80
		if rng.Float64() < 0.02 {
			spiky[i] += rng.ExpFloat64() * 40
		}
	}
	for name, x := range map[string][]float64{"flat": flat, "noise": noisy, "spikes": spiky} {
		if IsDiurnal(x, 15*time.Minute, DefaultDiurnalThreshold) {
			t.Errorf("%s series misclassified as diurnal (ratio %v)",
				name, DiurnalRatio(x, 15*time.Minute))
		}
	}
}

func TestDiurnalRatioWrongPeriodRejected(t *testing.T) {
	// A 6-hour oscillation is not a daily pattern.
	n := 672
	x := make([]float64, n)
	for i := range x {
		x[i] = 20 * math.Sin(2*math.Pi*float64(i)/24) // period 24 samples = 6h
	}
	if IsDiurnal(x, 15*time.Minute, DefaultDiurnalThreshold) {
		t.Errorf("6-hour oscillation misclassified as diurnal (ratio %v)",
			DiurnalRatio(x, 15*time.Minute))
	}
}

func TestDiurnalRatioBadInterval(t *testing.T) {
	if DiurnalRatio([]float64{1, 2, 3}, 0) != 0 {
		t.Error("non-positive interval should give 0")
	}
}
