// Package ownership implements the paper's router-ownership inference
// (§5.3, Figure 8): six heuristics label traceroute hop addresses with
// candidate operator ASes, building on the BGP IP-to-AS mapping and
// CAIDA-style AS relationship inferences; a resolution step then picks the
// likely owner of each interface. With owners in hand, links are classified
// as internal or interconnection, and interconnections as p2p or c2p.
//
// The key ambiguity the heuristics untangle: on a customer-to-provider
// link the customer numbers its interface from provider-assigned space, so
// the BGP origin of an address is not the operator of its router.
package ownership

import (
	"net/netip"
	"sort"

	"repro/internal/astopo"
	"repro/internal/ipam"
	"repro/internal/trace"
)

// Heuristic identifies which Figure 8 rule produced a label.
type Heuristic uint8

// The six heuristics.
const (
	First Heuristic = iota
	NoIP2AS
	Customer
	Provider
	Back
	Forward
)

// String returns the paper's heuristic name.
func (h Heuristic) String() string {
	switch h {
	case First:
		return "first"
	case NoIP2AS:
		return "noip2as"
	case Customer:
		return "customer"
	case Provider:
		return "provider"
	case Back:
		return "back"
	case Forward:
		return "forward"
	default:
		return "unknown"
	}
}

// Label is one candidate-owner annotation on an address.
type Label struct {
	AS   ipam.ASN
	Kind Heuristic
}

// RelFunc reports a's business relationship to b (astopo.RelNone when not
// adjacent) — the stand-in for CAIDA's relationship inferences.
type RelFunc func(a, b ipam.ASN) astopo.Relationship

// Inferencer holds the inputs to ownership inference.
type Inferencer struct {
	// Table is the BGP longest-prefix-match view.
	Table *ipam.Table
	// Rel supplies AS relationships.
	Rel RelFunc
}

// Inference is the outcome over a traceroute corpus.
type Inference struct {
	labels map[netip.Addr][]Label
	owner  map[netip.Addr]ipam.ASN
	// adjacency graph of consecutive responsive hops
	neighbors map[netip.Addr]map[netip.Addr]bool
	table     *ipam.Table
}

// Process runs the heuristics over the corpus and resolves owners.
// Traceroute hop sequences contribute consecutive responsive hops only; an
// unresponsive hop breaks adjacency, and the final hop of a complete
// traceroute (the destination server, not a router) is excluded.
func (inf *Inferencer) Process(trs []*trace.Traceroute) *Inference {
	r := &Inference{
		labels:    make(map[netip.Addr][]Label),
		owner:     make(map[netip.Addr]ipam.ASN),
		neighbors: make(map[netip.Addr]map[netip.Addr]bool),
		table:     inf.Table,
	}

	// Pass 1: per-traceroute windows → heuristics first, noip2as,
	// customer, provider; collect the hop adjacency graph.
	for _, tr := range trs {
		hops := routerHops(tr)
		for _, run := range consecutiveRuns(hops) {
			inf.applyWindows(r, run)
		}
	}

	// Pass 2: graph-wide heuristics back and forward.
	inf.applyBack(r)
	inf.applyForward(r)

	// Pass 3: resolve owners.
	r.resolve()
	return r
}

// routerHops returns the hop addresses excluding the destination server of
// complete traceroutes.
func routerHops(tr *trace.Traceroute) []netip.Addr {
	hops := tr.Hops
	if tr.Complete && len(hops) > 0 {
		hops = hops[:len(hops)-1]
	}
	out := make([]netip.Addr, len(hops))
	for i, h := range hops {
		out[i] = h.Addr // invalid for unresponsive hops
	}
	return out
}

// consecutiveRuns splits a hop list into runs of responsive hops,
// de-duplicating immediately repeated addresses.
func consecutiveRuns(hops []netip.Addr) [][]netip.Addr {
	var runs [][]netip.Addr
	var cur []netip.Addr
	flush := func() {
		if len(cur) > 0 {
			runs = append(runs, cur)
			cur = nil
		}
	}
	for _, a := range hops {
		if !a.IsValid() {
			flush()
			continue
		}
		if len(cur) > 0 && cur[len(cur)-1] == a {
			continue
		}
		cur = append(cur, a)
	}
	flush()
	return runs
}

func (inf *Inferencer) applyWindows(r *Inference, run []netip.Addr) {
	as := func(a netip.Addr) (ipam.ASN, bool) { return inf.Table.Lookup(a) }

	for i := 0; i+1 < len(run); i++ {
		x, y := run[i], run[i+1]
		r.addEdge(x, y)

		ax, okx := as(x)
		ay, oky := as(y)

		// first: IPx then IPy, both announced by ASi → IPx owned by ASi.
		if okx && oky && ax == ay {
			r.addLabel(x, Label{ax, First})
		}
		// provider: IPx in ASi, IPy in ASj, ASj provider of ASi → IPy
		// owned by ASj (a provider interface facing its customer).
		if okx && oky && ax != ay && inf.Rel(ay, ax) == astopo.RelProvider {
			r.addLabel(y, Label{ay, Provider})
		}

		if i+2 >= len(run) {
			continue
		}
		z := run[i+2]
		az, okz := as(z)

		// noip2as: IPy unmapped, IPx and IPz both ASi → IPy owned by ASi.
		if okx && !oky && okz && ax == az {
			r.addLabel(y, Label{ax, NoIP2AS})
		}
		// customer: IPx, IPy in ASi, IPz in ASj, ASj customer of ASi →
		// IPy owned by ASj (the customer numbers its interface from
		// provider space).
		if okx && oky && okz && ax == ay && az != ax &&
			inf.Rel(az, ax) == astopo.RelCustomer {
			r.addLabel(y, Label{az, Customer})
		}
	}
}

// applyBack: links x1–y, x2–y, x3–y where x1, x2 share a candidate owner
// ASi → label x3 with ASi, provided ASi announces x3 in BGP.
func (inf *Inferencer) applyBack(r *Inference) {
	// For each hub y, look at its neighborhood.
	for _, y := range r.sortedAddrs() {
		ns := r.neighborList(y)
		if len(ns) < 3 {
			continue
		}
		// Count candidate owners among labeled neighbors.
		counts := make(map[ipam.ASN]int)
		for _, x := range ns {
			for _, as := range candidateSet(r.labels[x]) {
				counts[as]++
			}
		}
		for _, x := range ns {
			if len(r.labels[x]) > 0 {
				continue
			}
			ax, ok := inf.Table.Lookup(x)
			if !ok {
				continue
			}
			if counts[ax] >= 2 {
				r.addLabel(x, Label{ax, Back})
			}
		}
	}
}

// applyForward: an unlabeled x whose neighbors y1..yn (n ≥ 3) all map to
// the same ASj and are all labeled → label x with ASj.
func (inf *Inferencer) applyForward(r *Inference) {
	for _, x := range r.sortedAddrs() {
		if len(r.labels[x]) > 0 {
			continue
		}
		ns := r.neighborList(x)
		if len(ns) < 3 {
			continue
		}
		var common ipam.ASN
		ok := true
		for i, y := range ns {
			ay, mapped := inf.Table.Lookup(y)
			if !mapped || len(r.labels[y]) == 0 {
				ok = false
				break
			}
			if i == 0 {
				common = ay
			} else if ay != common {
				ok = false
				break
			}
		}
		if ok {
			r.addLabel(x, Label{common, Forward})
		}
	}
}

func (r *Inference) addEdge(a, b netip.Addr) {
	if r.neighbors[a] == nil {
		r.neighbors[a] = make(map[netip.Addr]bool)
	}
	if r.neighbors[b] == nil {
		r.neighbors[b] = make(map[netip.Addr]bool)
	}
	r.neighbors[a][b] = true
	r.neighbors[b][a] = true
}

func (r *Inference) addLabel(a netip.Addr, l Label) {
	r.labels[a] = append(r.labels[a], l)
}

func (r *Inference) sortedAddrs() []netip.Addr {
	out := make([]netip.Addr, 0, len(r.neighbors))
	for a := range r.neighbors {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

func (r *Inference) neighborList(a netip.Addr) []netip.Addr {
	out := make([]netip.Addr, 0, len(r.neighbors[a]))
	for n := range r.neighbors[a] {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

func candidateSet(labels []Label) []ipam.ASN {
	seen := make(map[ipam.ASN]bool)
	var out []ipam.ASN
	for _, l := range labels {
		if !seen[l.AS] {
			seen[l.AS] = true
			out = append(out, l.AS)
		}
	}
	return out
}

// resolve assigns owners: a single candidate wins outright; with multiple
// candidates, the address is assigned only when the most frequent label
// came from the first heuristic (the paper's rule).
func (r *Inference) resolve() {
	for a, labels := range r.labels {
		cands := candidateSet(labels)
		if len(cands) == 1 {
			r.owner[a] = cands[0]
			continue
		}
		counts := make(map[Label]int)
		for _, l := range labels {
			counts[l]++
		}
		var top Label
		topN := -1
		for l, n := range counts {
			if n > topN || (n == topN && less(l, top)) {
				top, topN = l, n
			}
		}
		if top.Kind == First {
			r.owner[a] = top.AS
		}
	}
}

func less(a, b Label) bool {
	if a.AS != b.AS {
		return a.AS < b.AS
	}
	return a.Kind < b.Kind
}

// Owner returns the resolved operator of an interface address.
func (r *Inference) Owner(a netip.Addr) (ipam.ASN, bool) {
	as, ok := r.owner[a]
	return as, ok
}

// Labels returns the raw candidate labels of an address.
func (r *Inference) Labels(a netip.Addr) []Label { return r.labels[a] }

// Resolved returns the number of addresses with an assigned owner and the
// number seen in the corpus.
func (r *Inference) Resolved() (resolved, seen int) {
	return len(r.owner), len(r.neighbors)
}

// LinkClass distinguishes internal from interconnection links.
type LinkClass uint8

// Link classes.
const (
	UnknownClass LinkClass = iota
	InternalLink
	InterconnectionLink
)

// String returns the class name.
func (c LinkClass) String() string {
	switch c {
	case InternalLink:
		return "internal"
	case InterconnectionLink:
		return "interconnection"
	default:
		return "unknown"
	}
}

// LinkType refines interconnection links by relationship.
type LinkType uint8

// Link types (paper §5.3: p2p and c2p).
const (
	UnknownType LinkType = iota
	P2P
	C2P
)

// String returns the type name.
func (t LinkType) String() string {
	switch t {
	case P2P:
		return "p2p"
	case C2P:
		return "c2p"
	default:
		return "unknown"
	}
}

// ClassifyLink classifies the link between two consecutive hop addresses
// using the resolved owners and the relationship function.
func (r *Inference) ClassifyLink(a, b netip.Addr, rel RelFunc) (LinkClass, LinkType) {
	oa, oka := r.Owner(a)
	ob, okb := r.Owner(b)
	if !oka || !okb {
		return UnknownClass, UnknownType
	}
	if oa == ob {
		return InternalLink, UnknownType
	}
	switch rel(oa, ob) {
	case astopo.RelPeer:
		return InterconnectionLink, P2P
	case astopo.RelCustomer, astopo.RelProvider:
		return InterconnectionLink, C2P
	default:
		return InterconnectionLink, UnknownType
	}
}
