package ownership

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/astopo"
	"repro/internal/bgp"
	"repro/internal/cdn"
	"repro/internal/ipam"
	"repro/internal/itopo"
	"repro/internal/probe"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// synthetic fixture: AS100 (10/8), AS200 (20/8), AS300 (30/8);
// AS300 is a customer of AS100; AS200 is a provider of AS100.
func synthInferencer(t *testing.T) *Inferencer {
	t.Helper()
	tbl := ipam.NewTable()
	for _, e := range []struct {
		p  string
		as ipam.ASN
	}{
		{"10.0.0.0/8", 100}, {"20.0.0.0/8", 200}, {"30.0.0.0/8", 300},
	} {
		if err := tbl.Insert(netip.MustParsePrefix(e.p), e.as); err != nil {
			t.Fatal(err)
		}
	}
	rel := func(a, b ipam.ASN) astopo.Relationship {
		switch {
		case a == 300 && b == 100:
			return astopo.RelCustomer
		case a == 100 && b == 300:
			return astopo.RelProvider
		case a == 200 && b == 100:
			return astopo.RelProvider
		case a == 100 && b == 200:
			return astopo.RelCustomer
		default:
			return astopo.RelNone
		}
	}
	return &Inferencer{Table: tbl, Rel: rel}
}

func mkTrace(hops ...string) *trace.Traceroute {
	tr := &trace.Traceroute{}
	for _, h := range hops {
		if h == "*" {
			tr.Hops = append(tr.Hops, trace.Hop{})
		} else {
			tr.Hops = append(tr.Hops, trace.Hop{Addr: netip.MustParseAddr(h)})
		}
	}
	return tr
}

func hasLabel(labels []Label, as ipam.ASN, k Heuristic) bool {
	for _, l := range labels {
		if l.AS == as && l.Kind == k {
			return true
		}
	}
	return false
}

func TestFirstHeuristic(t *testing.T) {
	inf := synthInferencer(t)
	r := inf.Process([]*trace.Traceroute{mkTrace("10.0.0.1", "10.0.0.2", "20.0.0.1")})
	if !hasLabel(r.Labels(netip.MustParseAddr("10.0.0.1")), 100, First) {
		t.Errorf("first heuristic missing: %v", r.Labels(netip.MustParseAddr("10.0.0.1")))
	}
	owner, ok := r.Owner(netip.MustParseAddr("10.0.0.1"))
	if !ok || owner != 100 {
		t.Errorf("owner = %v, %v", owner, ok)
	}
}

func TestProviderHeuristic(t *testing.T) {
	inf := synthInferencer(t)
	// AS100 → AS200 where AS200 is AS100's provider.
	r := inf.Process([]*trace.Traceroute{mkTrace("10.0.0.1", "20.0.0.1")})
	if !hasLabel(r.Labels(netip.MustParseAddr("20.0.0.1")), 200, Provider) {
		t.Errorf("provider heuristic missing: %v", r.Labels(netip.MustParseAddr("20.0.0.1")))
	}
}

func TestCustomerHeuristic(t *testing.T) {
	inf := synthInferencer(t)
	// x,y in AS100, z in AS300 (customer of AS100): y is the customer's
	// router numbered from provider space.
	r := inf.Process([]*trace.Traceroute{mkTrace("10.0.0.1", "10.0.0.2", "30.0.0.1")})
	if !hasLabel(r.Labels(netip.MustParseAddr("10.0.0.2")), 300, Customer) {
		t.Errorf("customer heuristic missing: %v", r.Labels(netip.MustParseAddr("10.0.0.2")))
	}
	owner, ok := r.Owner(netip.MustParseAddr("10.0.0.2"))
	if !ok || owner != 300 {
		t.Errorf("customer-side owner = %v, %v, want AS300", owner, ok)
	}
}

func TestNoIP2ASHeuristic(t *testing.T) {
	inf := synthInferencer(t)
	r := inf.Process([]*trace.Traceroute{mkTrace("10.0.0.1", "90.0.0.1", "10.0.0.2")})
	if !hasLabel(r.Labels(netip.MustParseAddr("90.0.0.1")), 100, NoIP2AS) {
		t.Errorf("noip2as heuristic missing: %v", r.Labels(netip.MustParseAddr("90.0.0.1")))
	}
}

func TestUnresponsiveBreaksAdjacency(t *testing.T) {
	inf := synthInferencer(t)
	// The '*' separates the two AS100 hops: no first label.
	r := inf.Process([]*trace.Traceroute{mkTrace("10.0.0.1", "*", "10.0.0.2")})
	if len(r.Labels(netip.MustParseAddr("10.0.0.1"))) != 0 {
		t.Errorf("labels across gap: %v", r.Labels(netip.MustParseAddr("10.0.0.1")))
	}
}

func TestDestinationServerHopExcluded(t *testing.T) {
	inf := synthInferencer(t)
	tr := mkTrace("10.0.0.1", "10.0.0.2", "30.0.0.1")
	tr.Complete = true // final hop is the destination server
	r := inf.Process([]*trace.Traceroute{tr})
	// Without the server hop the customer heuristic cannot fire.
	if len(r.Labels(netip.MustParseAddr("10.0.0.2"))) != 0 {
		t.Errorf("server hop leaked into inference: %v", r.Labels(netip.MustParseAddr("10.0.0.2")))
	}
	if !hasLabel(r.Labels(netip.MustParseAddr("10.0.0.1")), 100, First) {
		t.Error("first label missing on router pair")
	}
}

func TestBackHeuristic(t *testing.T) {
	inf := synthInferencer(t)
	trs := []*trace.Traceroute{
		mkTrace("10.0.1.1", "20.0.0.9"),
		mkTrace("10.0.1.1", "10.0.9.9"), // first → x1 owned by AS100
		mkTrace("10.0.2.1", "20.0.0.9"),
		mkTrace("10.0.2.1", "10.0.9.9"), // first → x2 owned by AS100
		mkTrace("10.0.3.1", "20.0.0.9"), // x3 unlabeled, announced by AS100
	}
	r := inf.Process(trs)
	if !hasLabel(r.Labels(netip.MustParseAddr("10.0.3.1")), 100, Back) {
		t.Errorf("back heuristic missing: %v", r.Labels(netip.MustParseAddr("10.0.3.1")))
	}
}

func TestForwardHeuristic(t *testing.T) {
	inf := synthInferencer(t)
	trs := []*trace.Traceroute{
		mkTrace("90.0.0.1", "20.0.1.1"),
		mkTrace("20.0.1.1", "20.0.9.9"),
		mkTrace("90.0.0.1", "20.0.2.1"),
		mkTrace("20.0.2.1", "20.0.9.9"),
		mkTrace("90.0.0.1", "20.0.3.1"),
		mkTrace("20.0.3.1", "20.0.9.9"),
	}
	r := inf.Process(trs)
	if !hasLabel(r.Labels(netip.MustParseAddr("90.0.0.1")), 200, Forward) {
		t.Errorf("forward heuristic missing: %v", r.Labels(netip.MustParseAddr("90.0.0.1")))
	}
}

func TestResolutionConflicts(t *testing.T) {
	inf := synthInferencer(t)
	r := &Inference{
		labels: map[netip.Addr][]Label{},
		owner:  map[netip.Addr]ipam.ASN{},
		table:  inf.Table,
	}
	a := netip.MustParseAddr("10.0.0.1")
	b := netip.MustParseAddr("10.0.0.2")
	// a: dominated by first → resolved.
	r.labels[a] = []Label{{100, First}, {100, First}, {300, Customer}}
	// b: dominated by customer → left unresolved per the paper's rule.
	r.labels[b] = []Label{{300, Customer}, {300, Customer}, {100, First}}
	r.resolve()
	if owner, ok := r.Owner(a); !ok || owner != 100 {
		t.Errorf("a owner = %v, %v", owner, ok)
	}
	if _, ok := r.Owner(b); ok {
		t.Error("b should remain unresolved")
	}
}

func TestClassifyLink(t *testing.T) {
	inf := synthInferencer(t)
	r := &Inference{
		labels: map[netip.Addr][]Label{},
		owner: map[netip.Addr]ipam.ASN{
			netip.MustParseAddr("10.0.0.1"): 100,
			netip.MustParseAddr("10.0.0.2"): 100,
			netip.MustParseAddr("30.0.0.1"): 300,
			netip.MustParseAddr("20.0.0.1"): 200,
		},
		table: inf.Table,
	}
	cl, _ := r.ClassifyLink(netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"), inf.Rel)
	if cl != InternalLink {
		t.Errorf("same-owner link = %v", cl)
	}
	cl, lt := r.ClassifyLink(netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("30.0.0.1"), inf.Rel)
	if cl != InterconnectionLink || lt != C2P {
		t.Errorf("c2p link = %v %v", cl, lt)
	}
	cl, lt = r.ClassifyLink(netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("99.0.0.1"), inf.Rel)
	if cl != UnknownClass || lt != UnknownType {
		t.Errorf("unknown link = %v %v", cl, lt)
	}
}

func TestHeuristicStrings(t *testing.T) {
	names := map[Heuristic]string{
		First: "first", NoIP2AS: "noip2as", Customer: "customer",
		Provider: "provider", Back: "back", Forward: "forward",
	}
	for h, want := range names {
		if h.String() != want {
			t.Errorf("%v.String() = %q", h, h.String())
		}
	}
	if InternalLink.String() != "internal" || InterconnectionLink.String() != "interconnection" {
		t.Error("link class strings")
	}
	if P2P.String() != "p2p" || C2P.String() != "c2p" || UnknownType.String() != "unknown" {
		t.Error("link type strings")
	}
}

// TestAccuracyAgainstGroundTruth runs the full pipeline on a simulated
// network and checks inferred owners against the simulator's ground truth
// — the validation the paper could not perform.
func TestAccuracyAgainstGroundTruth(t *testing.T) {
	seed := int64(21)
	topo, err := astopo.Generate(astopo.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	rnet, err := itopo.Build(topo, itopo.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := bgp.NewDynamics(topo, bgp.DefaultDynConfig(seed, 24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	platform, err := cdn.Deploy(rnet, cdn.DefaultConfig(seed, 120))
	if err != nil {
		t.Fatal(err)
	}
	pr := probe.New(simnet.New(rnet, dyn, nil, simnet.DefaultConfig(seed)))
	pr.DstFailProb = 0

	var trs []*trace.Traceroute
	cs := platform.Clusters
	for i := 0; i < len(cs); i++ {
		for j := 0; j < len(cs); j += 7 {
			if i == j {
				continue
			}
			trs = append(trs, pr.Traceroute(cs[i], cs[j], false, true, time.Hour))
		}
	}

	inf := &Inferencer{Table: rnet.BGP, Rel: topo.Rel}
	res := inf.Process(trs)
	resolved, seen := res.Resolved()
	if seen == 0 || resolved == 0 {
		t.Fatalf("nothing inferred: resolved=%d seen=%d", resolved, seen)
	}
	correct, wrong := 0, 0
	for a, owner := range res.owner {
		truth, ok := rnet.IfaceOwner(a)
		if !ok {
			continue
		}
		if truth == owner {
			correct++
		} else {
			wrong++
		}
	}
	acc := float64(correct) / float64(correct+wrong)
	t.Logf("ownership: %d/%d addresses resolved, accuracy %.3f", resolved, seen, acc)
	if acc < 0.8 {
		t.Errorf("accuracy = %.3f, want >= 0.8", acc)
	}
	if float64(resolved)/float64(seen) < 0.3 {
		t.Errorf("coverage = %.3f, want >= 0.3 (\"most, but not all interfaces\")",
			float64(resolved)/float64(seen))
	}
}
