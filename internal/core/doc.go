// Package core groups the paper's analysis pipeline — the primary
// contribution of "A Server-to-Server View of the Internet" (CoNEXT 2015):
//
//   - core/aspath: AS-path inference from traceroutes (LPM mapping,
//     imputation, loop filtering, edit-distance change detection, Table 1);
//   - core/timeline: trace timelines, lifetimes, prevalence, best-path
//     deltas (Figures 2–7);
//   - core/stats: percentiles, ECDFs, decile heat maps, KDE, Pearson;
//   - core/fft: FFT/Goertzel and the diurnal power-ratio detector;
//   - core/congest: consistent-congestion detection and per-segment
//     localization (§5.1–5.2, Figure 9);
//   - core/ownership: router ownership heuristics and link classification
//     (§5.3, Figure 8);
//   - core/dualstack: IPv4 vs IPv6 comparisons and cRTT inflation (§6,
//     Figure 10).
package core
