package plot

import (
	"encoding/xml"
	"strings"
	"testing"
)

// wellFormed asserts the SVG parses as XML.
func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed: %v\n%s", err, svg[:min(400, len(svg))])
		}
	}
}

func TestECDFChart(t *testing.T) {
	svg := ECDFChart("Figure 2a", "AS paths", []Series{
		{Name: "IPv4", Values: []float64{1, 1, 2, 2, 3, 5}},
		{Name: "IPv6", Values: []float64{1, 2, 2, 4}},
		{Name: "empty", Values: nil},
	}, false)
	wellFormed(t, svg)
	for _, want := range []string{"Figure 2a", "IPv4 (n=6)", "IPv6 (n=4)", "polyline", "ECDF"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Contains(svg, "empty (n=0)") {
		t.Error("empty series should not appear in the legend")
	}
}

func TestECDFChartLogX(t *testing.T) {
	svg := ECDFChart("log", "ms", []Series{
		{Name: "a", Values: []float64{1, 10, 100, 1000}},
	}, true)
	wellFormed(t, svg)
	// Log ticks at powers of ten.
	for _, want := range []string{">1<", ">10<", ">100<", ">1k<"} {
		if !strings.Contains(svg, want) {
			t.Errorf("log axis missing tick %q", want)
		}
	}
}

func TestECDFChartDegenerate(t *testing.T) {
	wellFormed(t, ECDFChart("none", "x", nil, false))
	wellFormed(t, ECDFChart("const", "x", []Series{{Name: "c", Values: []float64{5, 5, 5}}}, false))
	wellFormed(t, ECDFChart("logzero", "x", []Series{{Name: "z", Values: []float64{0, 0}}}, true))
}

func TestLineChart(t *testing.T) {
	svg := LineChart("Figure 1", "day", "RTT (ms)", []XY{
		{Name: "IPv4", X: []float64{0, 1, 2, 3}, Y: []float64{150, 152, 260, 258}},
		{Name: "IPv6", X: []float64{0, 1, 2, 3}, Y: []float64{140, 139, 141, 90}},
	})
	wellFormed(t, svg)
	if !strings.Contains(svg, "RTT (ms)") || !strings.Contains(svg, "IPv6") {
		t.Error("labels missing")
	}
	// Degenerate inputs do not panic.
	wellFormed(t, LineChart("empty", "x", "y", nil))
	wellFormed(t, LineChart("flat", "x", "y", []XY{{Name: "f", X: []float64{1, 2}, Y: []float64{3, 3}}}))
}

func TestHeatmapChart(t *testing.T) {
	h := HeatmapData{
		XEdges: []float64{3, 24, 240},
		YEdges: []float64{0, 10, 50},
		Cells:  [][]float64{{1.5, 0.5}, {0.2, 2.8}},
		FmtX:   func(v float64) string { return tickLabel(v) + "h" },
		FmtY:   func(v float64) string { return tickLabel(v) + "ms" },
	}
	svg := HeatmapChart("Figure 4", h)
	wellFormed(t, svg)
	for _, want := range []string{"2.80", "1.50", "3h", "50ms", "rect"} {
		if !strings.Contains(svg, want) {
			t.Errorf("heatmap missing %q", want)
		}
	}
	if HeatmapChart("bad", HeatmapData{}) != "" {
		t.Error("degenerate heatmap should render empty")
	}
}

func TestTicks(t *testing.T) {
	ts := ticks(0, 100, false)
	if len(ts) < 3 || len(ts) > 9 {
		t.Errorf("ticks(0,100) = %v", ts)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Fatalf("ticks not increasing: %v", ts)
		}
	}
	if got := ticks(5, 5, false); len(got) != 1 {
		t.Errorf("degenerate ticks = %v", got)
	}
	lt := ticks(1, 1000, true)
	if len(lt) != 4 {
		t.Errorf("log ticks = %v, want 4 powers of ten", lt)
	}
}

func TestTickLabel(t *testing.T) {
	cases := map[float64]string{
		2000000: "2M",
		50000:   "50k",
		42:      "42",
		0.5:     "0.5",
		0.001:   "0.001",
	}
	for v, want := range cases {
		if got := tickLabel(v); got != want {
			t.Errorf("tickLabel(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestEscape(t *testing.T) {
	if got := escape(`a<b&"c"`); got != "a&lt;b&amp;&quot;c&quot;" {
		t.Errorf("escape = %q", got)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
