// Package plot renders the paper's figure types as standalone SVG
// documents using only the standard library: ECDF curves (Figures 2, 3, 6,
// 7, 10), decile heat maps (Figures 4, 5), RTT timelines (Figure 1), and
// density curves (Figure 9).
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named sample or curve.
type Series struct {
	Name   string
	Values []float64
}

// XY is one named (x, y) polyline.
type XY struct {
	Name string
	X, Y []float64
}

// palette holds the line colors, cycled.
var palette = []string{
	"#c0392b", "#2980b9", "#27ae60", "#8e44ad", "#d35400", "#16a085",
	"#7f8c8d", "#2c3e50",
}

const (
	width   = 640
	height  = 400
	marginL = 70
	marginR = 20
	marginT = 40
	marginB = 55
)

type canvas struct {
	b          strings.Builder
	xmin, xmax float64
	ymin, ymax float64
	logX       bool
}

func newCanvas(title string, xmin, xmax, ymin, ymax float64, logX bool) *canvas {
	c := &canvas{xmin: xmin, xmax: xmax, ymin: ymin, ymax: ymax, logX: logX}
	fmt.Fprintf(&c.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&c.b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&c.b, `<text x="%d" y="24" font-family="sans-serif" font-size="15" text-anchor="middle">%s</text>`+"\n",
		width/2, escape(title))
	return c
}

// x maps a data x-coordinate onto the canvas.
func (c *canvas) x(v float64) float64 {
	lo, hi, val := c.xmin, c.xmax, v
	if c.logX {
		lo, hi, val = math.Log10(c.xmin), math.Log10(c.xmax), math.Log10(math.Max(v, c.xmin))
	}
	if hi == lo {
		return marginL
	}
	return marginL + (val-lo)/(hi-lo)*(width-marginL-marginR)
}

func (c *canvas) y(v float64) float64 {
	if c.ymax == c.ymin {
		return height - marginB
	}
	return float64(height-marginB) - (v-c.ymin)/(c.ymax-c.ymin)*float64(height-marginT-marginB)
}

func (c *canvas) axes(xlabel, ylabel string) {
	fmt.Fprintf(&c.b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, height-marginB, width-marginR, height-marginB)
	fmt.Fprintf(&c.b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, height-marginB)
	fmt.Fprintf(&c.b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		(marginL+width-marginR)/2, height-12, escape(xlabel))
	fmt.Fprintf(&c.b, `<text x="16" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		(marginT+height-marginB)/2, (marginT+height-marginB)/2, escape(ylabel))

	for _, t := range ticks(c.xmin, c.xmax, c.logX) {
		px := c.x(t)
		fmt.Fprintf(&c.b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
			px, height-marginB, px, height-marginB+5)
		fmt.Fprintf(&c.b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`+"\n",
			px, height-marginB+18, tickLabel(t))
	}
	for _, t := range ticks(c.ymin, c.ymax, false) {
		py := c.y(t)
		fmt.Fprintf(&c.b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`+"\n",
			marginL-5, py, marginL, py)
		fmt.Fprintf(&c.b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="end">%s</text>`+"\n",
			marginL-8, py+3, tickLabel(t))
		fmt.Fprintf(&c.b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#eeeeee"/>`+"\n",
			marginL, py, width-marginR, py)
	}
}

func (c *canvas) polyline(xs, ys []float64, color string) {
	if len(xs) == 0 {
		return
	}
	var pts strings.Builder
	for i := range xs {
		fmt.Fprintf(&pts, "%.1f,%.1f ", c.x(xs[i]), c.y(ys[i]))
	}
	fmt.Fprintf(&c.b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.6"/>`+"\n",
		strings.TrimSpace(pts.String()), color)
}

func (c *canvas) legend(names []string) {
	y := marginT + 4
	for i, name := range names {
		color := palette[i%len(palette)]
		fmt.Fprintf(&c.b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			width-marginR-150, y+4, width-marginR-130, y+4, color)
		fmt.Fprintf(&c.b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			width-marginR-125, y+8, escape(name))
		y += 16
	}
}

func (c *canvas) done() string {
	c.b.WriteString("</svg>\n")
	return c.b.String()
}

// ECDFChart renders empirical CDFs of the samples.
func ECDFChart(title, xlabel string, series []Series, logX bool) string {
	xmin, xmax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Values {
			xmin = math.Min(xmin, v)
			xmax = math.Max(xmax, v)
		}
	}
	if math.IsInf(xmin, 1) {
		xmin, xmax = 0, 1
	}
	if logX {
		if xmin <= 0 {
			xmin = 1e-3
		}
		if xmax <= xmin {
			xmax = xmin * 10
		}
	} else if xmax == xmin {
		xmax = xmin + 1
	}
	c := newCanvas(title, xmin, xmax, 0, 1, logX)
	c.axes(xlabel, "ECDF")
	var names []string
	for i, s := range series {
		if len(s.Values) == 0 {
			continue
		}
		sorted := append([]float64(nil), s.Values...)
		sort.Float64s(sorted)
		xs := make([]float64, 0, len(sorted)*2)
		ys := make([]float64, 0, len(sorted)*2)
		for j, v := range sorted {
			f0 := float64(j) / float64(len(sorted))
			f1 := float64(j+1) / float64(len(sorted))
			xs = append(xs, v, v)
			ys = append(ys, f0, f1)
		}
		c.polyline(xs, ys, palette[i%len(palette)])
		names = append(names, fmt.Sprintf("%s (n=%d)", s.Name, len(s.Values)))
	}
	c.legend(names)
	return c.done()
}

// LineChart renders (x, y) polylines on shared axes.
func LineChart(title, xlabel, ylabel string, lines []XY) string {
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, l := range lines {
		for i := range l.X {
			xmin, xmax = math.Min(xmin, l.X[i]), math.Max(xmax, l.X[i])
			ymin, ymax = math.Min(ymin, l.Y[i]), math.Max(ymax, l.Y[i])
		}
	}
	if math.IsInf(xmin, 1) {
		xmin, xmax, ymin, ymax = 0, 1, 0, 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// Pad the y range slightly.
	pad := (ymax - ymin) * 0.05
	c := newCanvas(title, xmin, xmax, math.Max(0, ymin-pad), ymax+pad, false)
	c.axes(xlabel, ylabel)
	var names []string
	for i, l := range lines {
		c.polyline(l.X, l.Y, palette[i%len(palette)])
		names = append(names, l.Name)
	}
	c.legend(names)
	return c.done()
}

// HeatmapChart renders a 2-D binned distribution: cells shaded by value,
// with per-cell percentages. Bin edges come with formatters.
type HeatmapData struct {
	XEdges, YEdges []float64
	Cells          [][]float64 // [yi][xi], percentages
	FmtX, FmtY     func(float64) string
}

// HeatmapChart renders the Figure 4/5 style heat map.
func HeatmapChart(title string, h HeatmapData) string {
	nx, ny := len(h.XEdges)-1, len(h.YEdges)-1
	if nx < 1 || ny < 1 {
		return ""
	}
	c := newCanvas(title, 0, 1, 0, 1, false)
	maxV := 0.0
	for _, row := range h.Cells {
		for _, v := range row {
			maxV = math.Max(maxV, v)
		}
	}
	cw := float64(width-marginL-marginR) / float64(nx)
	ch := float64(height-marginT-marginB) / float64(ny)
	for yi := 0; yi < ny; yi++ {
		for xi := 0; xi < nx; xi++ {
			v := h.Cells[yi][xi]
			// Higher deltas at the top: row ny-1 is drawn first (top).
			px := float64(marginL) + float64(xi)*cw
			py := float64(marginT) + float64(ny-1-yi)*ch
			shade := 255
			if maxV > 0 {
				shade = 255 - int(200*v/maxV)
			}
			fmt.Fprintf(&c.b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="rgb(%d,%d,255)" stroke="#ffffff"/>`+"\n",
				px, py, cw, ch, shade, shade)
			fmt.Fprintf(&c.b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="9" text-anchor="middle">%.2f</text>`+"\n",
				px+cw/2, py+ch/2+3, v)
		}
	}
	// Edge labels.
	for xi := 0; xi <= nx; xi++ {
		px := float64(marginL) + float64(xi)*cw
		fmt.Fprintf(&c.b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="8" text-anchor="middle">%s</text>`+"\n",
			px, height-marginB+14, escape(h.FmtX(h.XEdges[xi])))
	}
	for yi := 0; yi <= ny; yi++ {
		py := float64(marginT) + float64(ny-yi)*ch
		fmt.Fprintf(&c.b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="8" text-anchor="end">%s</text>`+"\n",
			marginL-4, py+3, escape(h.FmtY(h.YEdges[yi])))
	}
	return c.done()
}

// ticks returns up to ~6 pleasant tick positions covering [lo, hi].
func ticks(lo, hi float64, logScale bool) []float64 {
	if logScale {
		var out []float64
		start := math.Floor(math.Log10(math.Max(lo, 1e-12)))
		end := math.Ceil(math.Log10(math.Max(hi, 1e-12)))
		for e := start; e <= end; e++ {
			t := math.Pow(10, e)
			if t >= lo*0.999 && t <= hi*1.001 {
				out = append(out, t)
			}
		}
		return out
	}
	span := hi - lo
	if span <= 0 {
		return []float64{lo}
	}
	step := math.Pow(10, math.Floor(math.Log10(span/5)))
	for span/step > 7 {
		step *= 2
	}
	for span/step < 3 {
		step /= 2
	}
	var out []float64
	for t := math.Ceil(lo/step) * step; t <= hi+step/2; t += step {
		out = append(out, t)
	}
	return out
}

func tickLabel(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.0fM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.0fk", v/1e3)
	case av >= 10 || v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	case av >= 0.01:
		return fmt.Sprintf("%.2g", v)
	default:
		return fmt.Sprintf("%.1g", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
