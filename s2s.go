// Package s2s is a Go reproduction of "A Server-to-Server View of the
// Internet" (Chandrasekaran, Smaragdakis, Berger, Luckie, Ng — CoNEXT
// 2015): the measurement methodology and analyses of the paper, plus a
// deterministic simulation of everything the paper's production platform
// provided — an Internet core (AS-level topology with Gao–Rexford policy
// routing, router-level forwarding, IXPs, dual-stack addressing,
// congestion) and a globally deployed CDN measurement platform.
//
// The package is a facade over the implementation packages:
//
//	geo, ipam, astopo, bgp, itopo, congestion, simnet, cdn  — substrates
//	probe, campaign, trace                                  — measurement
//	core/{aspath,timeline,stats,fft,congest,ownership,
//	      dualstack,relinfer,changepoint}                   — analyses
//	experiments, report, plot, mapping                      — reproduction
//
// Quick start:
//
//	env, err := s2s.NewEnv(s2s.TestScale(1))
//	if err != nil { ... }
//	res, err := s2s.MustExperiment("T1").Run(env)
//	fmt.Print(res.Text)
//
// Or build the pieces directly:
//
//	study, err := s2s.NewStudy(s2s.StudyConfig{Seed: 1, ASes: 150, Clusters: 150, Days: 30})
//	tr := study.Prober.Traceroute(study.Platform.Clusters[0], study.Platform.Clusters[1], false, true, 0)
package s2s

import (
	"fmt"
	"io"
	"time"

	"repro/internal/astopo"
	"repro/internal/bgp"
	"repro/internal/campaign"
	"repro/internal/cdn"
	"repro/internal/congestion"
	"repro/internal/core/aspath"
	"repro/internal/core/changepoint"
	"repro/internal/core/congest"
	"repro/internal/core/dualstack"
	"repro/internal/core/fft"
	"repro/internal/core/ownership"
	"repro/internal/core/relinfer"
	"repro/internal/core/stats"
	"repro/internal/core/timeline"
	"repro/internal/experiments"
	"repro/internal/geo"
	"repro/internal/ipam"
	"repro/internal/itopo"
	"repro/internal/probe"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// Core identity types.
type (
	// ASN is an autonomous system number.
	ASN = ipam.ASN
	// ASPath is an AS-level path.
	ASPath = aspath.Path
	// City is a geographic location from the built-in database.
	City = geo.City
)

// Substrate types.
type (
	// Topology is the AS-level graph.
	Topology = astopo.Topology
	// TopologyConfig parameterizes AS-graph generation.
	TopologyConfig = astopo.Config
	// Network is the router-level network.
	Network = itopo.Network
	// NetworkConfig parameterizes router-level materialization.
	NetworkConfig = itopo.Config
	// Dynamics is the time-varying BGP routing.
	Dynamics = bgp.Dynamics
	// CongestionModel is the diurnal link-congestion model.
	CongestionModel = congestion.Model
	// Platform is the deployed CDN.
	Platform = cdn.Platform
	// Cluster is one CDN server cluster.
	Cluster = cdn.Cluster
	// VirtualNet is the probe-able virtual network.
	VirtualNet = simnet.Net
)

// Measurement types.
type (
	// Prober issues pings and traceroutes.
	Prober = probe.Prober
	// Traceroute is one traceroute record.
	Traceroute = trace.Traceroute
	// Ping is one ping record.
	Ping = trace.Ping
	// Hop is one traceroute hop.
	Hop = trace.Hop
	// PairKey identifies a directed server pair on one protocol.
	PairKey = trace.PairKey
	// Consumer receives campaign records.
	Consumer = campaign.Consumer
	// Collector is an in-memory Consumer.
	Collector = campaign.Collector
)

// Analysis types.
type (
	// Mapper infers AS paths from traceroutes.
	Mapper = aspath.Mapper
	// TimelineBuilder groups traceroutes into trace timelines.
	TimelineBuilder = timeline.Builder
	// Timeline is one directed pair's traceroute time series.
	Timeline = timeline.Timeline
	// Detector flags consistent congestion (§5.1).
	Detector = congest.Detector
	// Localizer finds the congested segment (§5.2).
	Localizer = congest.Localizer
	// OwnershipInferencer runs the §5.3 heuristics.
	OwnershipInferencer = ownership.Inferencer
	// ECDF is an empirical CDF.
	ECDF = stats.ECDF
)

// Experiment-harness types.
type (
	// Scale sizes the simulation and campaigns.
	Scale = experiments.Scale
	// Env is the shared simulation environment for experiments.
	Env = experiments.Env
	// Result is one reproduced table or figure.
	Result = experiments.Result
	// Experiment binds an identifier to its runner.
	Experiment = experiments.Experiment
)

// Scales.
var (
	// TestScale is a tiny configuration (unit tests, quick demos).
	TestScale = experiments.TestScale
	// DefaultScale is the laptop-scale configuration.
	DefaultScale = experiments.DefaultScale
	// FullScale approaches the paper's campaign shape.
	FullScale = experiments.FullScale
)

// NewEnv builds the simulation environment for a scale.
func NewEnv(sc Scale) (*Env, error) { return experiments.NewEnv(sc) }

// Experiments returns every reproduced table/figure in presentation order.
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID returns the experiment with the given identifier (T1,
// F1…F10b, S51, S53, HL, AB-…).
func ExperimentByID(id string) (Experiment, bool) { return experiments.ByID(id) }

// MustExperiment is ExperimentByID that panics on unknown ids.
func MustExperiment(id string) Experiment {
	e, ok := experiments.ByID(id)
	if !ok {
		panic(fmt.Sprintf("s2s: unknown experiment %q", id))
	}
	return e
}

// StudyConfig sizes a standalone Study.
type StudyConfig struct {
	Seed     int64
	ASes     int // AS-graph size (≥ ~50)
	Clusters int // deployed CDN clusters (≥ 2)
	Days     int // virtual-time horizon for routing/congestion dynamics
}

// Study bundles a ready-to-probe simulated Internet + CDN platform for
// programs that want the substrate without the experiment harness.
type Study struct {
	Topo     *Topology
	Net      *Network
	Dyn      *Dynamics
	Cong     *CongestionModel
	Platform *Platform
	Sim      *VirtualNet
	Prober   *Prober
}

// NewStudy builds a Study.
func NewStudy(cfg StudyConfig) (*Study, error) {
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("s2s: Days must be positive")
	}
	duration := time.Duration(cfg.Days) * 24 * time.Hour
	acfg := astopo.DefaultConfig(cfg.Seed)
	if cfg.ASes > 0 {
		acfg.NumASes = cfg.ASes
	}
	topo, err := astopo.Generate(acfg)
	if err != nil {
		return nil, err
	}
	net, err := itopo.Build(topo, itopo.DefaultConfig(cfg.Seed))
	if err != nil {
		return nil, err
	}
	dyn, err := bgp.NewDynamics(topo, bgp.DefaultDynConfig(cfg.Seed, duration))
	if err != nil {
		return nil, err
	}
	cong, err := congestion.NewModel(net, congestion.DefaultConfig(cfg.Seed, duration))
	if err != nil {
		return nil, err
	}
	platform, err := cdn.Deploy(net, cdn.DefaultConfig(cfg.Seed, cfg.Clusters))
	if err != nil {
		return nil, err
	}
	sim := simnet.New(net, dyn, cong, simnet.DefaultConfig(cfg.Seed))
	return &Study{
		Topo:     topo,
		Net:      net,
		Dyn:      dyn,
		Cong:     cong,
		Platform: platform,
		Sim:      sim,
		Prober:   probe.New(sim),
	}, nil
}

// SelectMesh picks up to n dual-stack clusters spread across the platform.
func (s *Study) SelectMesh(n int, seed int64) []*Cluster {
	return campaign.SelectMesh(s.Platform, n, seed)
}

// NewMapper returns an AS-path mapper over the study's BGP view.
func (s *Study) NewMapper() *Mapper { return aspath.NewMapper(s.Net.BGP) }

// RunAll executes every experiment against a fresh environment at the
// given scale, writing each result's text and paper-vs-measured summary.
func RunAll(w io.Writer, sc Scale) error {
	env, err := NewEnv(sc)
	if err != nil {
		return err
	}
	for _, exp := range Experiments() {
		res, err := exp.Run(env)
		if err != nil {
			return fmt.Errorf("s2s: %s: %w", exp.ID, err)
		}
		fmt.Fprintln(w, res.Text)
		fmt.Fprintln(w, res.Summary())
	}
	return nil
}

// Dual-stack analysis conveniences (Figure 10).
var (
	// RTTDifferences pairs v4/v6 traceroutes and returns RTTv4−RTTv6 (ms).
	RTTDifferences = dualstack.Differences
	// DiurnalRatio is the fraction of a series' energy at f = 1/day.
	DiurnalRatio = fft.DiurnalRatio
)

// NewTimelineBuilder returns a trace-timeline builder over a mapper at the
// given measurement cadence.
func NewTimelineBuilder(m *Mapper, interval time.Duration) *TimelineBuilder {
	return timeline.NewBuilder(m, interval)
}

// NewDetector returns the §5.1 congestion detector with the paper's
// thresholds (≥10 ms p95−p5 variation, diurnal power ratio ≥ 0.3).
func NewDetector() Detector { return congest.DefaultDetector() }

// NewLocalizer returns the §5.2 congested-segment localizer with the
// paper's parameters (ρ ≥ 0.5, static IP-level path, 30-minute cadence).
func NewLocalizer() Localizer { return congest.DefaultLocalizer() }

// BuildPingSeries folds ping records into evenly spaced per-pair RTT
// series, dropping pairs with fewer than minSamples received samples.
var BuildPingSeries = congest.BuildSeries

// SummarizeCongestion runs the detector over ping series, split by
// protocol (§5.1).
var SummarizeCongestion = congest.Summarize

// DetectLevelShifts finds RTT level shifts (Figure 1) by binary
// segmentation over a median-filtered series.
var DetectLevelShifts = changepoint.DetectRobust

// InferRelationships runs Gao-style AS-relationship inference over
// observed AS paths — the stand-in for the CAIDA inferences the paper
// consumes (§5.3).
func InferRelationships(paths []ASPath) *relinfer.Inferred {
	return relinfer.Infer(paths, relinfer.DefaultConfig())
}
