package s2s

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/astopo"
	"repro/internal/bgp"
	"repro/internal/core/aspath"
	"repro/internal/core/fft"
	"repro/internal/experiments"
	"repro/internal/ipam"
	"repro/internal/itopo"
)

// The per-table/figure benchmarks share one environment: the first call
// pays for the campaigns (reported by the dedicated campaign benchmarks
// below); subsequent iterations measure the analysis cost, which is what
// varies per figure.
var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
	benchErr  error
)

func sharedBenchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv, benchErr = experiments.NewEnv(experiments.TestScale(77))
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

// benchExperiment warms the experiment once (campaigns + caches), then
// measures the analysis per iteration.
func benchExperiment(b *testing.B, id string) {
	env := sharedBenchEnv(b)
	exp, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	if _, err := exp.Run(env); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(env); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- One benchmark per paper table and figure (DESIGN.md index). ----

func BenchmarkTable1Completeness(b *testing.B)         { benchExperiment(b, "T1") }
func BenchmarkFigure1Timeline(b *testing.B)            { benchExperiment(b, "F1") }
func BenchmarkFigure2PathCounts(b *testing.B)          { benchExperiment(b, "F2") }
func BenchmarkFigure3PrevalenceChanges(b *testing.B)   { benchExperiment(b, "F3") }
func BenchmarkFigure4Heatmap10th(b *testing.B)         { benchExperiment(b, "F4") }
func BenchmarkFigure5Heatmap90th(b *testing.B)         { benchExperiment(b, "F5") }
func BenchmarkFigure6Suboptimal(b *testing.B)          { benchExperiment(b, "F6") }
func BenchmarkFigure7ShortTerm(b *testing.B)           { benchExperiment(b, "F7") }
func BenchmarkFigure8Ownership(b *testing.B)           { benchExperiment(b, "F8") }
func BenchmarkFigure9CongestionOverhead(b *testing.B)  { benchExperiment(b, "F9") }
func BenchmarkFigure10aDualStack(b *testing.B)         { benchExperiment(b, "F10a") }
func BenchmarkFigure10bInflation(b *testing.B)         { benchExperiment(b, "F10b") }
func BenchmarkSection51DiurnalPrevalence(b *testing.B) { benchExperiment(b, "S51") }
func BenchmarkSection53CongestedLinks(b *testing.B)    { benchExperiment(b, "S53") }
func BenchmarkHeadlines(b *testing.B)                  { benchExperiment(b, "HL") }

// ---- Ablation benchmarks (design choices DESIGN.md calls out). ----

func BenchmarkAblationParisVsClassic(b *testing.B)    { benchExperiment(b, "AB-paris") }
func BenchmarkAblationPSDThreshold(b *testing.B)      { benchExperiment(b, "AB-psd") }
func BenchmarkAblationImputation(b *testing.B)        { benchExperiment(b, "AB-impute") }
func BenchmarkAblationBestPathCriterion(b *testing.B) { benchExperiment(b, "AB-crit") }

// ---- Substrate micro-benchmarks. ----

func benchWorld(b *testing.B) (*astopo.Topology, *itopo.Network) {
	b.Helper()
	topo, err := astopo.Generate(astopo.DefaultConfig(7))
	if err != nil {
		b.Fatal(err)
	}
	net, err := itopo.Build(topo, itopo.DefaultConfig(7))
	if err != nil {
		b.Fatal(err)
	}
	return topo, net
}

// BenchmarkBGPRouteComputation measures one full Gao–Rexford destination
// tree on the default 300-AS topology.
func BenchmarkBGPRouteComputation(b *testing.B) {
	topo, _ := benchWorld(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := bgp.NewRouting(topo, nil, bgp.V4)
		dst := topo.ASes[i%len(topo.ASes)].ASN
		src := topo.ASes[(i*7+3)%len(topo.ASes)].ASN
		if r.Path(src, dst) == nil && src != dst {
			b.Fatal("unreachable in steady state")
		}
	}
}

// BenchmarkResolvePath measures router-level expansion of an AS path.
func BenchmarkResolvePath(b *testing.B) {
	topo, net := benchWorld(b)
	r := bgp.NewRouting(topo, nil, bgp.V4)
	src := topo.ASes[2].ASN
	dst := topo.ASes[len(topo.ASes)-3].ASN
	asPath := r.Path(src, dst)
	if asPath == nil {
		b.Skip("pair unreachable")
	}
	sr := net.RoutersOf(src)[0]
	dr := net.RoutersOf(dst)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.ResolvePath(sr, dr, asPath, false, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTracerouteSim measures one simulated Paris traceroute.
func BenchmarkTracerouteSim(b *testing.B) {
	study, err := NewStudy(StudyConfig{Seed: 9, ASes: 300, Clusters: 200, Days: 7})
	if err != nil {
		b.Fatal(err)
	}
	mesh := study.SelectMesh(4, 9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := mesh[i%len(mesh)]
		dst := mesh[(i+1)%len(mesh)]
		study.Prober.Traceroute(src, dst, false, true, time.Duration(i)*time.Minute)
	}
}

// BenchmarkPingSim measures one simulated ping.
func BenchmarkPingSim(b *testing.B) {
	study, err := NewStudy(StudyConfig{Seed: 9, ASes: 300, Clusters: 200, Days: 7})
	if err != nil {
		b.Fatal(err)
	}
	mesh := study.SelectMesh(4, 9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		study.Prober.Ping(mesh[i%len(mesh)], mesh[(i+1)%len(mesh)], false, time.Duration(i)*time.Minute)
	}
}

// BenchmarkLPMLookup measures longest-prefix matching on a built BGP view.
func BenchmarkLPMLookup(b *testing.B) {
	_, net := benchWorld(b)
	links := net.Links
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := links[i%len(links)]
		net.BGP.Lookup(l.Addr4[i%2])
	}
}

// BenchmarkEditDistance measures AS-path edit distance on realistic sizes.
func BenchmarkEditDistance(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	paths := make([]aspath.Path, 64)
	for i := range paths {
		n := 3 + rng.Intn(5)
		p := make(aspath.Path, n)
		for j := range p {
			p[j] = ipam.ASN(rng.Intn(30) + 1)
		}
		paths[i] = p
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		aspath.EditDistance(paths[i%64], paths[(i+1)%64])
	}
}

// BenchmarkFFTDiurnalRatio measures the §5.1 detector on a one-week
// 15-minute series.
func BenchmarkFFTDiurnalRatio(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 672)
	for i := range xs {
		xs[i] = 80 + rng.NormFloat64()*3
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fft.DiurnalRatio(xs, 15*time.Minute)
	}
}

// BenchmarkFFT1024 measures the radix-2 transform itself.
func BenchmarkFFT1024(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]complex128, 1024)
	for i := range xs {
		xs[i] = complex(rng.NormFloat64(), 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fft.FFT(xs); err != nil {
			b.Fatal(err)
		}
	}
}
