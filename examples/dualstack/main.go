// dualstack reproduces the Section 6 workflow: paired IPv4/IPv6
// measurements between dual-stack servers, the RTTv4−RTTv6 distribution
// (Figure 10a), the cRTT inflation metric (Figure 10b), and the headline
// opportunity — how often switching protocols would save ≥ 50 ms.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro"
	"repro/internal/campaign"
	"repro/internal/core/dualstack"
	"repro/internal/core/stats"
	"repro/internal/geo"
	"repro/internal/report"
)

func main() {
	var (
		seed = flag.Int64("seed", 3, "random seed")
		days = flag.Int("days", 45, "campaign length in days")
		mesh = flag.Int("mesh", 14, "mesh size")
	)
	flag.Parse()

	study, err := s2s.NewStudy(s2s.StudyConfig{Seed: *seed, ASes: 250, Clusters: 250, Days: *days})
	if err != nil {
		log.Fatal(err)
	}
	servers := study.SelectMesh(*mesh, *seed)
	mapper := study.NewMapper()

	diffs := dualstack.NewDiffCollector(mapper)
	infl := dualstack.NewInflationCollector()
	err = campaign.LongTerm(study.Prober, campaign.LongTermConfig{
		Servers:  servers,
		Duration: time.Duration(*days) * 24 * time.Hour,
		Interval: 3 * time.Hour,
	}, campaign.Funcs{Traceroute: func(tr *s2s.Traceroute) {
		diffs.Add(tr)
		infl.Add(tr)
	}})
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	report.ECDFQuantiles(w, "RTTv4 − RTTv6 in ms (Fig 10a)", []report.Series{
		{Name: "All", Values: diffs.All},
		{Name: "Same AS-paths", Values: diffs.SamePath},
	}, []float64{0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99})

	v6Saves, v4Saves := dualstack.TailFractions(diffs.All, 50)
	fmt.Printf("\npaired measurements: %d (same AS path: %d)\n", len(diffs.All), len(diffs.SamePath))
	fmt.Printf("within ±10 ms:  %.1f%%  (paper: ~50%%)\n", 100*dualstack.SimilarFraction(diffs.All, 10))
	fmt.Printf("IPv6 saves ≥50 ms: %.2f%%  (paper: 3.7%%)\n", 100*v6Saves)
	fmt.Printf("IPv4 saves ≥50 ms: %.2f%%  (paper: 8.5%%)\n\n", 100*v4Saves)

	cityOf := func(id int) (geo.City, bool) {
		if id < 0 || id >= len(study.Platform.Clusters) {
			return geo.City{}, false
		}
		return geo.Cities[study.Platform.Clusters[id].City], true
	}
	set := infl.Set(cityOf)
	report.ECDFQuantiles(w, "Inflation RTT/cRTT (Fig 10b)", []report.Series{
		{Name: "IPv4", Values: set.V4All},
		{Name: "IPv6", Values: set.V6All},
		{Name: "IPv4 US-US", Values: set.V4US},
		{Name: "IPv4 Trans", Values: set.V4Trans},
	}, []float64{0.1, 0.25, 0.5, 0.75, 0.9})
	fmt.Printf("\nmedian inflation: v4 %.2f, v6 %.2f (paper: 3.01 / 3.1)\n",
		stats.Median(set.V4All), stats.Median(set.V6All))
	if len(set.V4US) > 0 && len(set.V4Trans) > 0 {
		fmt.Printf("US-US %.2f vs transcontinental %.2f (paper: transcontinental is lower)\n",
			stats.Median(set.V4US), stats.Median(set.V4Trans))
	}
}
