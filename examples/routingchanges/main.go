// routingchanges reproduces the Section 4 workflow on a medium simulation:
// a multi-month 3-hourly traceroute mesh, AS-path timelines, routing-change
// detection by edit distance, and the lifetime-vs-RTT-impact analysis
// behind Figures 3, 4 and 6.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro"
	"repro/internal/campaign"
	"repro/internal/core/stats"
	"repro/internal/core/timeline"
	"repro/internal/report"
)

func main() {
	var (
		seed = flag.Int64("seed", 7, "random seed")
		days = flag.Int("days", 60, "campaign length in days")
		mesh = flag.Int("mesh", 12, "mesh size (dual-stack servers)")
	)
	flag.Parse()

	study, err := s2s.NewStudy(s2s.StudyConfig{Seed: *seed, ASes: 200, Clusters: 200, Days: *days})
	if err != nil {
		log.Fatal(err)
	}
	servers := study.SelectMesh(*mesh, *seed)
	fmt.Printf("mesh: %d servers, %d days, 3-hourly, both protocols\n", len(servers), *days)

	interval := 3 * time.Hour
	builder := s2s.NewTimelineBuilder(study.NewMapper(), interval)
	err = campaign.LongTerm(study.Prober, campaign.LongTermConfig{
		Servers:       servers,
		Duration:      time.Duration(*days) * 24 * time.Hour,
		Interval:      interval,
		ParisSwitchAt: time.Duration(*days) * 24 * time.Hour * 62 / 100,
	}, campaign.Funcs{Traceroute: builder.Add})
	if err != nil {
		log.Fatal(err)
	}

	v4, v6 := timeline.ByProtocol(builder.Timelines())
	w := os.Stdout

	report.ECDFQuantiles(w, "\nUnique AS paths per trace timeline (Fig 2a)", []report.Series{
		{Name: "IPv4", Values: timeline.PathsPerTimeline(v4, interval)},
		{Name: "IPv6", Values: timeline.PathsPerTimeline(v6, interval)},
	}, nil)

	report.ECDFQuantiles(w, "Routing changes per timeline (Fig 3b)", []report.Series{
		{Name: "IPv4", Values: timeline.ChangesPerTimeline(v4)},
		{Name: "IPv6", Values: timeline.ChangesPerTimeline(v6)},
	}, nil)

	// Figure 4: lifetime vs baseline-RTT increase of sub-optimal paths.
	life, delta := timeline.LifetimeDeltaSamples(v4, interval, timeline.ByP10)
	if len(life) > 0 {
		h, err := stats.DecileHeatmap(life, delta, 10)
		if err != nil {
			log.Fatal(err)
		}
		report.Heatmap(w, "\nLifetime vs Δ10th-pct RTT, IPv4 (Fig 4a)", h,
			report.DurationLabel, report.MsLabel)
		fmt.Printf("\n20%% of sub-optimal IPv4 paths raise baseline RTT by >= %.1f ms (paper: 25 ms)\n",
			timeline.DeltaQuantileMs(v4, interval, timeline.ByP10, 0.8))
	}

	// The most instructive single timeline: most changes.
	var busiest *timeline.Timeline
	for _, tl := range v4 {
		if busiest == nil || tl.NumChanges() > busiest.NumChanges() {
			busiest = tl
		}
	}
	if busiest != nil {
		fmt.Printf("\nbusiest timeline: server %d -> %d (%d changes)\n",
			busiest.Key.SrcID, busiest.Key.DstID, busiest.NumChanges())
		for i, ch := range busiest.Changes() {
			if i >= 8 {
				fmt.Printf("  ... %d more\n", busiest.NumChanges()-8)
				break
			}
			fmt.Printf("  day %5.1f  dist %d  %v -> %v\n",
				ch.At.Hours()/24, ch.Dist, ch.From, ch.To)
		}
	}
}
