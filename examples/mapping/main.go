// mapping demonstrates the downstream consumer the paper names for its
// measurements (§2): the CDN's request-mapping system. Candidate serving
// clusters ping vantage clusters inside client (eyeball) networks; each
// client AS is then mapped to the lowest-median-RTT cluster — and, because
// this is a simulation, the decisions are scored against the noise-free
// optimum.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/geo"
	"repro/internal/mapping"
)

func main() {
	var (
		seed    = flag.Int64("seed", 17, "random seed")
		clients = flag.Int("clients", 20, "client networks to map")
	)
	flag.Parse()

	study, err := s2s.NewStudy(s2s.StudyConfig{Seed: *seed, ASes: 200, Clusters: 250, Days: 3})
	if err != nil {
		log.Fatal(err)
	}

	// Candidates: the CDN's own clusters; clients: clusters hosted inside
	// third-party (eyeball) networks.
	var cands, vantage []*s2s.Cluster
	for _, c := range study.Platform.Clusters {
		if c.HostAS == study.Topo.CDNASN {
			if len(cands) < 24 {
				cands = append(cands, c)
			}
		} else if len(vantage) < *clients {
			vantage = append(vantage, c)
		}
	}
	fmt.Printf("mapping %d client networks across %d candidate clusters\n\n", len(vantage), len(cands))

	sys, err := mapping.Build(study.Prober, cands, vantage, mapping.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	baseRTT := func(cand, client *s2s.Cluster) (time.Duration, bool) {
		rtt, err := study.Sim.BaseRTT(cand, client, false, 1, 2, time.Hour)
		if err != nil {
			return 0, false
		}
		return rtt, true
	}
	for _, a := range sys.Assignments() {
		cc := geo.Cities[a.Client.City]
		sc := geo.Cities[a.Candidate.City]
		fmt.Printf("  client %-8v %-14s -> cluster %-14s %6.1f ms\n",
			a.Client.HostAS, cc.Name+" ("+cc.Country+")", sc.Name, a.MedianRTTms)
	}
	optimal, extra := sys.Oracle(baseRTT)
	fmt.Printf("\n%.0f%% of clients mapped to the true lowest-RTT cluster; mean stretch %.2f ms\n",
		100*optimal, extra)
}
