// congestionwatch reproduces the Section 5 workflow: a week-long 15-minute
// ping mesh, FFT-based detection of consistent congestion (§5.1), a
// 30-minute traceroute campaign over the flagged pairs, per-segment
// Pearson localization of the congested link (§5.2), and — because this is
// a simulation — validation against the ground-truth congested links.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/campaign"
	"repro/internal/trace"
)

func main() {
	var (
		seed = flag.Int64("seed", 11, "random seed")
		mesh = flag.Int("mesh", 30, "ping mesh size (clusters)")
	)
	flag.Parse()

	study, err := s2s.NewStudy(s2s.StudyConfig{Seed: *seed, ASes: 200, Clusters: 250, Days: 21})
	if err != nil {
		log.Fatal(err)
	}
	members := study.Platform.Clusters[:*mesh]

	// ---- §5.1: ping mesh, one week, every 15 minutes. ----
	fmt.Printf("pinging %d×%d pairs for a week...\n", len(members), len(members)-1)
	var col campaign.Collector
	week := 7 * 24 * time.Hour
	err = campaign.PingMesh(study.Prober, campaign.PingMeshConfig{
		Pairs:    campaign.FullMeshPairs(members),
		Duration: week,
		Interval: 15 * time.Minute,
	}, &col)
	if err != nil {
		log.Fatal(err)
	}
	series := s2s.BuildPingSeries(col.Pings, 15*time.Minute, week, 600)
	v4, v6 := s2s.SummarizeCongestion(series, s2s.NewDetector())
	fmt.Printf("§5.1: v4 pairs %d, high-variation %.1f%%, congested %.1f%%\n",
		v4.Pairs, 100*v4.HighVariationFrac(), 100*v4.CongestedFrac())
	fmt.Printf("      v6 pairs %d, high-variation %.1f%%, congested %.1f%%\n",
		v6.Pairs, 100*v6.HighVariationFrac(), 100*v6.CongestedFrac())

	det := s2s.NewDetector()
	var flagged []trace.PairKey
	for k, s := range series {
		if !k.V6 && det.Congested(s) {
			flagged = append(flagged, k)
		}
	}
	fmt.Printf("flagged %d congested v4 pairs\n\n", len(flagged))
	if len(flagged) == 0 {
		fmt.Println("no congested pairs under this seed; try another")
		return
	}

	// ---- §5.2: 30-minute traceroutes over the flagged pairs, 2 weeks. ----
	var pairs [][2]*s2s.Cluster
	for _, k := range flagged {
		pairs = append(pairs, [2]*s2s.Cluster{
			study.Platform.Clusters[k.SrcID], study.Platform.Clusters[k.DstID]})
	}
	var trs campaign.Collector
	err = campaign.TracerouteCampaign(study.Prober, campaign.TracerouteCampaignConfig{
		Pairs:    pairs,
		Duration: 14 * 24 * time.Hour,
		Interval: 30 * time.Minute,
		Paris:    true,
	}, &trs)
	if err != nil {
		log.Fatal(err)
	}
	byKey := map[trace.PairKey][]*s2s.Traceroute{}
	for _, tr := range trs.Traceroutes {
		byKey[tr.Key()] = append(byKey[tr.Key()], tr)
	}

	loc := s2s.NewLocalizer()
	located, failed, validated := 0, 0, 0
	for _, k := range flagged {
		l, err := loc.Localize(byKey[k])
		if err != nil {
			failed++
			continue
		}
		located++
		// Ground-truth check: is the localized hop a router on a link the
		// congestion model actually congested?
		hit := ""
		if router, ok := study.Net.IfaceRouter(l.HopAddr); ok {
			for _, lid := range study.Cong.CongestedLinks() {
				link := study.Net.Links[lid]
				if link.A == router || link.B == router {
					hit = " [matches ground truth]"
					validated++
					break
				}
			}
		}
		fmt.Printf("pair %d->%d: congestion at hop %d (%v), rho=%.2f, overhead=%.1f ms%s\n",
			k.SrcID, k.DstID, l.SegmentIndex, l.HopAddr, l.Rho, l.OverheadMs, hit)
	}
	fmt.Printf("\nlocalized %d/%d flagged pairs (%d failures); %d/%d validated against ground truth\n",
		located, len(flagged), failed, validated, located)
}
