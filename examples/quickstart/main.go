// Quickstart: build a small simulated Internet + CDN platform, probe a
// server pair the way the paper's measurement servers do, and reproduce
// Table 1 on a one-week campaign.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// A small world: 120 ASes, 100 CDN clusters, 7 days of dynamics.
	study, err := s2s.NewStudy(s2s.StudyConfig{Seed: 42, ASes: 120, Clusters: 100, Days: 7})
	if err != nil {
		log.Fatal(err)
	}

	// Pick two dual-stack measurement servers in different networks.
	mesh := study.SelectMesh(8, 42)
	src, dst := mesh[0], mesh[1]
	fmt.Printf("probing %s (%v) -> %s (%v)\n\n", src.Server4, src.HostAS, dst.Server4, dst.HostAS)

	// One ping and one Paris traceroute, like the platform issues.
	ping := study.Prober.Ping(src, dst, false, time.Hour)
	fmt.Printf("ping: rtt=%v lost=%v\n\n", ping.RTT.Round(time.Millisecond/10), ping.Lost)

	tr := study.Prober.Traceroute(src, dst, false, true, time.Hour)
	fmt.Printf("traceroute (%d hops, complete=%v):\n", len(tr.Hops), tr.Complete)
	for i, h := range tr.Hops {
		if !h.Responsive() {
			fmt.Printf("  %2d  *\n", i+1)
			continue
		}
		fmt.Printf("  %2d  %-18v %v\n", i+1, h.Addr, h.RTT.Round(time.Millisecond/10))
	}

	// Infer the AS path the way the paper does (§4.1).
	mapper := study.NewMapper()
	res := mapper.Infer(tr)
	fmt.Printf("\nAS path: %v  (class: %v, usable: %v)\n\n", res.Path, res.Class, res.Usable())

	// A one-week mini campaign feeding the Table 1 accounting.
	builder := s2s.NewTimelineBuilder(mapper, 3*time.Hour)
	for at := time.Duration(0); at < 7*24*time.Hour; at += 3 * time.Hour {
		for _, a := range mesh {
			for _, b := range mesh {
				if a.ID == b.ID {
					continue
				}
				builder.Add(study.Prober.Traceroute(a, b, false, true, at))
				builder.Add(study.Prober.Traceroute(a, b, true, true, at))
			}
		}
	}
	c4, a4, i4 := builder.TallyV4.Fractions()
	c6, a6, i6 := builder.TallyV6.Fractions()
	fmt.Println("Table 1 on this campaign (complete / missing-AS / missing-IP):")
	fmt.Printf("  IPv4: %5.1f%% / %4.1f%% / %5.1f%%\n", 100*c4, 100*a4, 100*i4)
	fmt.Printf("  IPv6: %5.1f%% / %4.1f%% / %5.1f%%\n", 100*c6, 100*a6, 100*i6)
	fmt.Printf("  timelines: %d, incomplete traceroutes: %d\n",
		len(builder.Timelines()), builder.Incomplete)
}
