package s2s

import (
	"strings"
	"testing"
	"time"
)

func TestStudyEndToEnd(t *testing.T) {
	study, err := NewStudy(StudyConfig{Seed: 5, ASes: 120, Clusters: 80, Days: 7})
	if err != nil {
		t.Fatal(err)
	}
	mesh := study.SelectMesh(6, 5)
	if len(mesh) != 6 {
		t.Fatalf("mesh = %d", len(mesh))
	}
	src, dst := mesh[0], mesh[1]

	ping := study.Prober.Ping(src, dst, false, time.Hour)
	if ping.SrcID != src.ID {
		t.Error("ping metadata wrong")
	}
	tr := study.Prober.Traceroute(src, dst, false, true, time.Hour)
	if tr.Complete {
		res := study.NewMapper().Infer(tr)
		if len(res.Path) == 0 {
			t.Error("empty AS path for complete traceroute")
		}
	}

	builder := NewTimelineBuilder(study.NewMapper(), 3*time.Hour)
	for at := time.Duration(0); at < 24*time.Hour; at += 3 * time.Hour {
		builder.Add(study.Prober.Traceroute(src, dst, false, true, at))
	}
	if builder.TallyV4.Total == 0 && builder.Incomplete == 0 {
		t.Error("builder consumed nothing")
	}
}

func TestStudyRejectsBadConfig(t *testing.T) {
	if _, err := NewStudy(StudyConfig{Seed: 1, ASes: 120, Clusters: 80, Days: 0}); err == nil {
		t.Error("zero days should error")
	}
	if _, err := NewStudy(StudyConfig{Seed: 1, ASes: 5, Clusters: 80, Days: 7}); err == nil {
		t.Error("tiny AS count should error")
	}
}

func TestExperimentRegistry(t *testing.T) {
	all := Experiments()
	if len(all) < 19 {
		t.Fatalf("experiments = %d, want >= 19", len(all))
	}
	if _, ok := ExperimentByID("T1"); !ok {
		t.Error("T1 missing")
	}
	if _, ok := ExperimentByID("bogus"); ok {
		t.Error("bogus id should miss")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustExperiment should panic on unknown id")
		}
	}()
	MustExperiment("bogus")
}

func TestRunAllAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in -short mode")
	}
	sc := TestScale(31)
	// Shrink further: this exercises plumbing, not statistics.
	sc.LongTermDays = 8
	sc.MeshSize = 6
	sc.PingMeshSize = 12
	sc.ShortTermDays = 2
	sc.ShortPairs = 6
	sc.LocalizeDays = 3
	var sb strings.Builder
	if err := RunAll(&sb, sc); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, id := range []string{"[T1]", "[F2]", "[F10a]", "[S51]", "[HL]"} {
		if !strings.Contains(out, id) {
			t.Errorf("RunAll output missing %s", id)
		}
	}
}

func TestDiurnalRatioFacade(t *testing.T) {
	xs := make([]float64, 672)
	for i := range xs {
		if i%96 < 24 {
			xs[i] = 30
		}
	}
	if DiurnalRatio(xs, 15*time.Minute) <= 0 {
		t.Error("diurnal ratio should be positive for a periodic series")
	}
}
